// Tests for the execution substrate: interpreter, parallel runner, schedule
// verifier and the ISDG builder — end-to-end semantics preservation of the
// paper's transformations.
#include <gtest/gtest.h>

#include "codegen/rewrite.h"
#include "dep/pdm.h"
#include "exec/compiled.h"
#include "exec/isdg.h"
#include "exec/verify.h"
#include "loopir/builder.h"
#include "support/rng.h"
#include "trans/planner.h"

namespace vdep::exec {
namespace {

using loopir::Expr;
using loopir::LoopNest;
using loopir::LoopNestBuilder;

LoopNest example41(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", -n, n).loop("i2", -n, n);
  i64 ext = 5 * n + 10;
  b.array("A", {{-ext, ext}, {-ext, ext}});
  b.assign(b.ref("A", {b.affine({3, -2}, 2), b.affine({-2, 3}, -2)}),
           Expr::add(Expr::add(b.read("A", {b.idx(0), b.idx(1)}),
                               b.read("A", {b.affine({1, 0}, 2),
                                            b.affine({0, 1}, -2)})),
                     Expr::constant(1)));
  return b.build();
}

LoopNest example42(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", -n, n).loop("i2", -n, n);
  i64 ext = 3 * n + 10;
  b.array("A", {{-ext, ext}});
  b.array("B", {{-n, n}, {-n, n}});
  b.assign(b.ref("A", {b.affine({1, -2}, 4)}),
           Expr::add(b.read("A", {b.affine({1, -2}, 0)}), Expr::constant(1)));
  b.assign(b.ref("B", {b.idx(0), b.idx(1)}),
           b.read("A", {b.affine({1, -2}, 8)}));
  return b.build();
}

trans::TransformPlan plan_for(const LoopNest& nest) {
  return trans::plan_transform(dep::compute_pdm(nest));
}

// ----------------------------------------------------------- ArrayStore

TEST(ArrayStore, ReadWriteRoundTrip) {
  LoopNest nest = example42(3);
  ArrayStore s(nest);
  s.write("A", Vec{-5}, 42);
  EXPECT_EQ(s.read("A", Vec{-5}), 42);
  EXPECT_EQ(s.read("A", Vec{0}), 0);
  EXPECT_THROW(s.read("A", Vec{1000}), PreconditionError);
  EXPECT_THROW(s.read("Ghost", Vec{0}), PreconditionError);
}

TEST(ArrayStore, FillPatternDeterministic) {
  LoopNest nest = example42(3);
  ArrayStore a(nest), b(nest);
  a.fill_pattern();
  b.fill_pattern();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.checksum(), b.checksum());
  ArrayStore c(nest);
  EXPECT_NE(a, c);
}

// ---------------------------------------------------------- interpreter

TEST(Interpreter, MatchesHandComputedKernel) {
  // A[i+1] = A[i] + 1 over i in [0, 4]: propagates A[0] forward.
  LoopNestBuilder b;
  b.loop("i", 0, 4);
  b.array("A", {{0, 5}});
  b.assign(b.ref("A", {b.affine({1}, 1)}),
           Expr::add(b.read("A", {b.idx(0)}), Expr::constant(1)));
  LoopNest nest = b.build();
  ArrayStore s(nest);
  s.write("A", Vec{0}, 7);
  run_sequential(nest, s);
  for (i64 k = 0; k <= 5; ++k) EXPECT_EQ(s.read("A", Vec{k}), 7 + k);
}

TEST(Interpreter, EvaluatesIndexAndMulNodes) {
  LoopNestBuilder b;
  b.loop("i", 1, 3);
  b.array("A", {{0, 3}});
  // A[i] = i * (i + 2)
  b.assign(b.ref("A", {b.idx(0)}),
           Expr::mul(Expr::index(0), Expr::add(Expr::index(0), Expr::constant(2))));
  LoopNest nest = b.build();
  ArrayStore s(nest);
  run_sequential(nest, s);
  EXPECT_EQ(s.read("A", Vec{1}), 3);
  EXPECT_EQ(s.read("A", Vec{2}), 8);
  EXPECT_EQ(s.read("A", Vec{3}), 15);
}

// --------------------------------------------------------------- runner

TEST(Runner, ScheduleCoversIterationSpaceExactly) {
  LoopNest nest = example41(5);
  Schedule sched = build_schedule(nest, plan_for(nest));
  EXPECT_EQ(sched.total_iterations(), nest.iteration_count());
  VerifyResult v = verify_schedule(nest, sched);
  EXPECT_TRUE(v.ok) << (v.violations.empty() ? "" : v.violations[0].reason);
}

TEST(Runner, Example41ParallelismShape) {
  // 1 DOALL loop (width 4N+1) x 2 partition classes; empty combos dropped.
  LoopNest nest = example41(5);
  Schedule sched = build_schedule(nest, plan_for(nest));
  EXPECT_GE(sched.parallelism(), 2 * (4 * 5 + 1) - 2);
  EXPECT_LE(sched.max_item_size(), 2 * 5 + 1);
}

TEST(Runner, Example42FourClassItems) {
  LoopNest nest = example42(5);
  Schedule sched = build_schedule(nest, plan_for(nest));
  EXPECT_EQ(sched.parallelism(), 4);  // det(H) = 4 independent classes
  EXPECT_EQ(sched.total_iterations(), nest.iteration_count());
}

TEST(Runner, ParallelExecutionMatchesSequential41) {
  LoopNest nest = example41(6);
  ThreadPool pool(4);
  ArrayStore ref(nest);
  ref.fill_pattern();
  ArrayStore par = ref;
  run_sequential(nest, ref);
  RunStats stats = run_parallel(nest, plan_for(nest), par, pool);
  EXPECT_EQ(ref, par);
  EXPECT_EQ(stats.iterations, nest.iteration_count());
}

TEST(Runner, ParallelExecutionMatchesSequential42) {
  LoopNest nest = example42(6);
  ThreadPool pool(4);
  ArrayStore ref(nest);
  ref.fill_pattern();
  ArrayStore par = ref;
  run_sequential(nest, ref);
  RunStats stats = run_parallel(nest, plan_for(nest), par, pool);
  EXPECT_EQ(ref, par);
  EXPECT_EQ(stats.work_items, 4);
}

TEST(Runner, ScheduledSerialAlsoMatches) {
  LoopNest nest = example41(4);
  ArrayStore ref(nest);
  ref.fill_pattern();
  ArrayStore got = ref;
  run_sequential(nest, ref);
  run_scheduled_serial(nest, plan_for(nest), got);
  EXPECT_EQ(ref, got);
}

TEST(RunnerProperty, RandomLoopsPreserveSemantics) {
  Rng rng(987654321);
  ThreadPool pool(3);
  int planned_parallel = 0;
  for (int iter = 0; iter < 25; ++iter) {
    LoopNestBuilder b;
    b.loop("i1", -3, 3).loop("i2", -3, 3);
    b.array("A", {{-80, 80}});
    loopir::AffineExpr w = b.affine({rng.uniform(-2, 2), rng.uniform(-2, 2)},
                                    rng.uniform(-3, 3));
    loopir::AffineExpr r = b.affine({rng.uniform(-2, 2), rng.uniform(-2, 2)},
                                    rng.uniform(-3, 3));
    b.assign(b.ref("A", {w}), Expr::add(b.read("A", {r}), Expr::constant(1)));
    LoopNest nest = b.build();
    trans::TransformPlan plan = plan_for(nest);
    if (plan.num_doall > 0 || plan.partition_classes > 1) ++planned_parallel;

    ArrayStore ref(nest);
    ref.fill_pattern();
    ArrayStore par = ref;
    run_sequential(nest, ref);
    run_parallel(nest, plan, par, pool);
    EXPECT_EQ(ref, par) << nest.to_string() << plan.to_string();

    Schedule sched = build_schedule(nest, plan);
    VerifyResult v = verify_schedule(nest, sched);
    EXPECT_TRUE(v.ok) << nest.to_string()
                      << (v.violations.empty() ? "" : v.violations[0].reason);
  }
  EXPECT_GE(planned_parallel, 2);  // the space should contain parallel wins
}

// --------------------------------------------------------------- verify

TEST(Verify, DetectsIllegalInterchange) {
  // A[i1][i2] = A[i1-1][i2+1] has direction (<,>): interchanging the loops
  // reverses dependences. Build the (illegal) plan by hand.
  LoopNestBuilder b;
  b.loop("i1", 0, 5).loop("i2", 0, 5);
  b.array("A", {{-2, 8}, {-2, 8}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
           b.read("A", {b.affine({1, 0}, -1), b.affine({0, 1}, 1)}));
  LoopNest nest = b.build();

  trans::TransformPlan bad;
  bad.depth = 2;
  bad.t = trans::interchange(2, 0, 1);
  bad.transformed_pdm = intlin::Mat(0, 2);
  bad.num_doall = 0;
  Schedule sched = build_schedule(nest, bad);
  VerifyResult v = verify_schedule(nest, sched);
  EXPECT_FALSE(v.ok);
  ASSERT_FALSE(v.violations.empty());
  EXPECT_NE(v.violations[0].reason.find("reordered"), std::string::npos);
}

TEST(Verify, DetectsCrossItemConflicts) {
  // Declaring the dependent loop DOALL splits dependent iterations across
  // items.
  LoopNestBuilder b;
  b.loop("i1", 0, 5);
  b.array("A", {{-1, 7}});
  b.assign(b.ref("A", {b.affine({1}, 1)}), b.read("A", {b.idx(0)}));
  LoopNest nest = b.build();
  trans::TransformPlan bad;
  bad.depth = 1;
  bad.t = intlin::Mat::identity(1);
  bad.transformed_pdm = intlin::Mat(0, 1);
  bad.num_doall = 1;  // wrong: the loop carries a dependence
  Schedule sched = build_schedule(nest, bad);
  VerifyResult v = verify_schedule(nest, sched);
  EXPECT_FALSE(v.ok);
  ASSERT_FALSE(v.violations.empty());
  EXPECT_NE(v.violations[0].reason.find("different work items"),
            std::string::npos);
}

TEST(Verify, DetectsMissingIteration) {
  LoopNestBuilder b;
  b.loop("i1", 0, 3);
  b.array("A", {{0, 3}});
  b.assign(b.ref("A", {b.idx(0)}), Expr::constant(1));
  LoopNest nest = b.build();
  Schedule sched;
  sched.items.push_back({Vec{0}, Vec{1}, Vec{2}});  // missing {3}
  VerifyResult v = verify_schedule(nest, sched);
  EXPECT_FALSE(v.ok);
}

TEST(Verify, DetectsDuplicateIteration) {
  LoopNestBuilder b;
  b.loop("i1", 0, 1);
  b.array("A", {{0, 1}});
  b.assign(b.ref("A", {b.idx(0)}), Expr::constant(1));
  LoopNest nest = b.build();
  Schedule sched;
  sched.items.push_back({Vec{0}, Vec{1}, Vec{1}});
  VerifyResult v = verify_schedule(nest, sched);
  EXPECT_FALSE(v.ok);
}

// ----------------------------------------------------------- compiled

TEST(Compiled, MatchesInterpreterOnExample41) {
  LoopNest nest = example41(5);
  ArrayStore a(nest), b(nest);
  a.fill_pattern();
  b.fill_pattern();
  run_sequential(nest, a);
  CompiledKernel kernel(nest, b);
  kernel.run_sequential();
  EXPECT_EQ(a, b);
}

TEST(Compiled, MatchesInterpreterOnExample42) {
  LoopNest nest = example42(5);
  ArrayStore a(nest), b(nest);
  a.fill_pattern();
  b.fill_pattern();
  run_sequential(nest, a);
  CompiledKernel(nest, b).run_sequential();
  EXPECT_EQ(a, b);
}

TEST(Compiled, EvaluatesIndexVariablesAndProducts) {
  LoopNestBuilder b;
  b.loop("i", 1, 5);
  b.array("A", {{0, 5}});
  b.assign(b.ref("A", {b.idx(0)}),
           Expr::mul(Expr::index(0), Expr::add(Expr::index(0), Expr::constant(2))));
  LoopNest nest = b.build();
  ArrayStore s(nest);
  CompiledKernel(nest, s).run_sequential();
  EXPECT_EQ(s.read("A", Vec{4}), 24);
}

TEST(Compiled, RejectsOutOfRangeSubscript) {
  LoopNestBuilder b;
  b.loop("i", 0, 10);
  b.array("A", {{0, 5}});  // too small for A[i]
  b.assign(b.ref("A", {b.idx(0)}), Expr::constant(1));
  LoopNest nest = b.build();
  ArrayStore s(nest);
  EXPECT_THROW(CompiledKernel(nest, s), PreconditionError);
}

TEST(Compiled, ScheduleExecutionMatchesSequential) {
  LoopNest nest = example41(6);
  trans::TransformPlan plan = plan_for(nest);
  Schedule sched = build_schedule(nest, plan);
  ThreadPool pool(4);
  ArrayStore ref(nest), par(nest);
  ref.fill_pattern();
  par.fill_pattern();
  run_sequential(nest, ref);
  execute_schedule_compiled(nest, sched, par, pool);
  EXPECT_EQ(ref, par);
}

TEST(CompiledProperty, RandomBodiesAgreeWithInterpreter) {
  Rng rng(321);
  for (int iter = 0; iter < 20; ++iter) {
    LoopNestBuilder b;
    b.loop("i1", -3, 3).loop("i2", -3, 3);
    b.array("A", {{-40, 40}});
    b.array("B", {{-40, 40}});
    loopir::AffineExpr w = b.affine({rng.uniform(-2, 2), rng.uniform(-2, 2)},
                                    rng.uniform(-3, 3));
    loopir::AffineExpr r1 = b.affine({rng.uniform(-2, 2), rng.uniform(-2, 2)},
                                     rng.uniform(-3, 3));
    loopir::AffineExpr r2 = b.affine({rng.uniform(-2, 2), rng.uniform(-2, 2)},
                                     rng.uniform(-3, 3));
    b.assign(b.ref("A", {w}),
             Expr::add(Expr::mul(b.read("A", {r1}), Expr::constant(3)),
                       Expr::sub(b.read("B", {r2}), Expr::index(1))));
    LoopNest nest = b.build();
    ArrayStore x(nest), y(nest);
    x.fill_pattern();
    y.fill_pattern();
    run_sequential(nest, x);
    CompiledKernel(nest, y).run_sequential();
    EXPECT_EQ(x, y);
  }
}

// ----------------------------------------------------------------- ISDG

TEST(Isdg, Example41DistancesInsidePdmLattice) {
  LoopNest nest = example41(5);
  Isdg g = build_isdg(nest);
  EXPECT_GT(g.edge_count(), 0);
  intlin::Lattice lat = dep::compute_pdm(nest).lattice();
  for (const Vec& d : g.distance_vectors())
    EXPECT_TRUE(lat.contains(d)) << intlin::to_string(d);
}

TEST(Isdg, Example42StridesAtLeastTwo) {
  // Figure 4's observation: every arrow jumps a stride >= 2 along i1
  // and/or i2 (no unit-distance arrows).
  LoopNest nest = example42(6);
  Isdg g = build_isdg(nest);
  EXPECT_GT(g.edge_count(), 0);
  for (const Vec& d : g.distance_vectors()) {
    i64 a0 = checked::abs(d[0]);
    i64 a1 = checked::abs(d[1]);
    EXPECT_TRUE(a0 >= 2 || a1 >= 2) << intlin::to_string(d);
  }
}

TEST(Isdg, NoFalseEdgesOnIndependentLoop) {
  LoopNestBuilder b;
  b.loop("i1", 0, 5).loop("i2", 0, 5);
  b.array("A", {{0, 5}, {0, 5}});
  b.array("B", {{0, 5}, {0, 5}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}), b.read("B", {b.idx(0), b.idx(1)}));
  Isdg g = build_isdg(b.build());
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.dependent_node_count(), 0);
  EXPECT_EQ(g.critical_path_length(), 0);
  EXPECT_EQ(g.chain_count(), 0);
}

TEST(Isdg, ChainStructureOfSequentialLoop) {
  // A[i+1] = A[i]: one chain through all iterations, critical path n-1.
  LoopNestBuilder b;
  b.loop("i1", 0, 9);
  b.array("A", {{0, 10}});
  b.assign(b.ref("A", {b.affine({1}, 1)}), b.read("A", {b.idx(0)}));
  Isdg g = build_isdg(b.build());
  EXPECT_EQ(g.chain_count(), 1);
  EXPECT_EQ(g.critical_path_length(), 9);
  EXPECT_EQ(g.dependent_node_count(), 10);
}

TEST(Isdg, PartitionedScheduleHasNoCrossItemEdges) {
  for (i64 n : {4, 6}) {
    LoopNest nest = example42(n);
    Isdg g = build_isdg(nest);
    Schedule sched = build_schedule(nest, plan_for(nest));
    EXPECT_EQ(g.cross_item_edges(sched), 0) << "N=" << n;
  }
  LoopNest nest41 = example41(5);
  Isdg g41 = build_isdg(nest41);
  Schedule sched41 = build_schedule(nest41, plan_for(nest41));
  EXPECT_EQ(g41.cross_item_edges(sched41), 0);
}

TEST(Isdg, AsciiRenderingShowsClasses) {
  LoopNest nest = example42(3);
  Isdg g = build_isdg(nest);
  std::string plain = g.to_ascii();
  // 7x7 grid rows; dependent nodes marked.
  EXPECT_EQ(std::count(plain.begin(), plain.end(), '\n'), 7);
  EXPECT_NE(plain.find('o'), std::string::npos);
  Schedule sched = build_schedule(nest, plan_for(nest));
  std::string classed = g.to_ascii(&sched);
  EXPECT_NE(classed.find('0'), std::string::npos);
  EXPECT_NE(classed.find('3'), std::string::npos);
  EXPECT_EQ(classed.find('o'), std::string::npos);  // all nodes scheduled
}

TEST(Isdg, AsciiRejectsNon2D) {
  LoopNestBuilder b;
  b.loop("i", 0, 3);
  b.array("A", {{0, 3}});
  b.assign(b.ref("A", {b.idx(0)}), Expr::constant(1));
  Isdg g = build_isdg(b.build());
  EXPECT_THROW(g.to_ascii(), PreconditionError);
}

TEST(Isdg, DotOutputWellFormed) {
  LoopNest nest = example42(3);
  std::string dot = build_isdg(nest).to_dot();
  EXPECT_NE(dot.find("digraph isdg"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.find("n_3_0 -> n_3_0"), std::string::npos);  // no self loops
}

TEST(Isdg, MinAbsStrideExample42) {
  LoopNest nest = example42(6);
  Vec s = build_isdg(nest).min_abs_stride();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_GE(s[0], 2);  // no arrow moves by 1 in i1
  EXPECT_GE(s[1], 1);
}

}  // namespace
}  // namespace vdep::exec
