// Tests for the static-analysis stack: Interval lattice edge cases, the
// IntervalEnv hulls the streaming runtime now delegates to, the
// steady-state LoopPartition derivation (empty/negative steady regions,
// degenerate single-iteration axes, hull refusals near the int64 limits),
// the KernelVerifier obligations (including rejection of tampered
// partitions/TUs and the injected-fault end-to-end fallback), and
// bit-identity of partitioned vs clamped kernels across the paper suite.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "analysis/interval.h"
#include "analysis/kernel_verifier.h"
#include "analysis/loop_partition.h"
#include "api/vdep.h"
#include "codegen/emit_c.h"
#include "codegen/rewrite.h"
#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/interpreter.h"
#include "jit/toolchain.h"
#include "loopir/builder.h"
#include "runtime/stream_executor.h"
#include "trans/planner.h"

namespace vdep {
namespace {

using analysis::Interval;
using analysis::IntervalEnv;
using intlin::i64;

trans::TransformPlan plan_for(const loopir::LoopNest& nest) {
  return trans::plan_transform(dep::compute_pdm(nest));
}

bool have_toolchain() { return jit::discover_toolchain().has_value(); }

/// Depth-2 nest with no cross-iteration dependence (T = I, both levels
/// DOALL): inner bounds are the triangular j in [i + `skew`, hi].
loopir::LoopNest triangular_doall(i64 n, i64 skew = 0) {
  loopir::LoopNestBuilder b;
  b.loop("i", 0, n);
  b.loop("j", loopir::Bound(loopir::AffineExpr(intlin::Vec{1, 0}, skew)),
         loopir::Bound(loopir::AffineExpr::constant(2, n)));
  b.array("A", {{0, n}, {0, 2 * n + 2}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
           loopir::Expr::add(b.read("A", {b.idx(0), b.idx(1)}),
                             loopir::Expr::constant(1)));
  return b.build();
}

// ------------------------------------------------------ Interval lattice

TEST(Interval, EmptyAndPointBasics) {
  EXPECT_TRUE(Interval::empty().is_empty());
  EXPECT_EQ(Interval::empty().extent(), 0);
  EXPECT_TRUE(Interval::point(7).is_point());
  EXPECT_EQ(Interval::of(3, 5).extent(), 3);
  EXPECT_TRUE(Interval::of(2, 9).contains(2));
  EXPECT_FALSE(Interval::of(2, 9).contains(10));
  // The empty interval is contained in everything, including itself.
  EXPECT_TRUE(Interval::of(5, 5).contains(Interval::empty()));
  EXPECT_TRUE(Interval::empty().contains(Interval::empty()));
  EXPECT_FALSE(Interval::empty().contains(Interval::point(0)));
}

TEST(Interval, ArithmeticAndNegativeScaling) {
  Interval a = Interval::of(-2, 3);
  EXPECT_EQ(a + Interval::of(10, 20), Interval::of(8, 23));
  EXPECT_EQ((a + Interval::empty()).is_empty(), true);
  EXPECT_EQ(a.scaled(2), Interval::of(-4, 6));
  EXPECT_EQ(a.scaled(-1), Interval::of(-3, 2));  // endpoints swap
  EXPECT_EQ(a.scaled(0), Interval::point(0));
  EXPECT_EQ(Interval::of(-7, 7).ceil_div(2), Interval::of(-3, 4));
  EXPECT_EQ(Interval::of(-7, 7).floor_div(2), Interval::of(-4, 3));
  EXPECT_EQ(Interval::of(0, 1).hull(Interval::of(5, 6)), Interval::of(0, 6));
  EXPECT_TRUE(Interval::of(0, 3).intersect(Interval::of(5, 9)).is_empty());
}

TEST(Interval, CheckedArithmeticThrowsAtTheLimits) {
  const i64 top = std::numeric_limits<i64>::max();
  const i64 bottom = std::numeric_limits<i64>::min();
  EXPECT_THROW(Interval::of(bottom, top).extent(), OverflowError);
  EXPECT_THROW(Interval::of(top, top).plus(1), OverflowError);
  EXPECT_THROW(Interval::of(top / 2, top).scaled(3), OverflowError);
}

// ------------------------------------------------- IntervalEnv vs runtime

TEST(IntervalEnv, HullsMatchTheStreamExecutorRoot) {
  // The runtime's descriptor root is built from the delegated hulls; check
  // the env agrees with root() on a skewed suite nest.
  for (i64 n : {6, 20}) {
    loopir::LoopNest nest = core::example42(n);
    trans::TransformPlan plan = plan_for(nest);
    codegen::TransformedNest tn = codegen::rewrite_nest(nest, plan);
    IntervalEnv env = IntervalEnv::from_nest(tn.nest, plan.num_doall);
    runtime::StreamExecutor ex(nest, plan, {});
    runtime::TaskDescriptor root = ex.root();
    for (int k = 0; k < root.ndims; ++k) {
      EXPECT_EQ(env.level_hull(k).lo, root.lo[k]) << "n=" << n << " k=" << k;
      EXPECT_EQ(env.level_hull(k).hi, root.hi[k]) << "n=" << n << " k=" << k;
    }
  }
}

TEST(IntervalEnv, InvertedLevelEmptiesTheWholeSpace) {
  loopir::LoopNestBuilder b;
  b.loop("i", 5, 2);  // inverted: zero iterations
  b.loop("j", 0, 9);
  b.array("A", {{0, 9}});
  b.assign(b.ref("A", {b.idx(1)}),
           loopir::Expr::add(b.read("A", {b.idx(1)}), loopir::Expr::constant(1)));
  IntervalEnv env = IntervalEnv::from_nest(b.build(), 2);
  EXPECT_TRUE(env.empty_space());
  EXPECT_TRUE(env.level_hull(0).is_empty());
  EXPECT_TRUE(env.level_hull(1).is_empty());
}

TEST(IntervalEnv, DegeneratePointAxisMakesDependentBoundsStatic) {
  // i has a single iteration, so the syntactically non-constant bound
  // "j >= i" is still a point interval: interval analysis beats a
  // syntactic constancy test and the whole nest is fully static.
  loopir::LoopNestBuilder b;
  b.loop("i", 4, 4);
  b.loop("j", loopir::Bound(loopir::AffineExpr(intlin::Vec{1, 0}, 0)),
         loopir::Bound(loopir::AffineExpr::constant(2, 9)));
  b.array("A", {{0, 9}, {0, 9}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
           loopir::Expr::add(b.read("A", {b.idx(0), b.idx(1)}),
                             loopir::Expr::constant(1)));
  loopir::LoopNest degen = b.build();
  IntervalEnv env = IntervalEnv::from_nest(degen, 2);
  EXPECT_EQ(env.level_hull(0), Interval::point(4));
  EXPECT_EQ(env.level_hull(1), Interval::of(4, 9));
  EXPECT_TRUE(env.is_static(degen.level(1).lower, /*lower=*/true, 1));

  auto part = analysis::analyze_partition(degen, 2);
  ASSERT_TRUE(part.has_value());
  EXPECT_TRUE(part->fully_static());
}

// ------------------------------------------------------ partition analysis

TEST(LoopPartition, TriangularInnerBoundPartitionsOnTheOuterAxis) {
  loopir::LoopNest nest = triangular_doall(16);
  trans::TransformPlan plan = plan_for(nest);
  ASSERT_EQ(plan.num_doall, 2);  // dependence-free: identity transform
  codegen::TransformedNest tn = codegen::rewrite_nest(nest, plan);
  auto part = analysis::analyze_partition(tn.nest, plan.num_doall);
  ASSERT_TRUE(part.has_value());
  EXPECT_FALSE(part->fully_static());
  EXPECT_EQ(part->axis, 0);
  EXPECT_EQ(part->level_static[0], 1);
  EXPECT_EQ(part->level_static[1], 0);
  ASSERT_EQ(part->constraints.size(), 1u);
  EXPECT_EQ(part->constraints[0].level, 1);
  EXPECT_TRUE(part->constraints[0].lower);
  EXPECT_EQ(part->constraints[0].coeff_axis, 1);
}

TEST(LoopPartition, SuiteNestsAreFullyStaticAfterTransform) {
  // Every paper-suite nest has rectangular transformed bounds: the
  // partition must come back fully static (no split needed, whole box
  // steady).
  for (core::NamedNest& c : core::paper_suite(12)) {
    trans::TransformPlan plan = plan_for(c.nest);
    if (plan.num_doall == 0) continue;
    codegen::TransformedNest tn = codegen::rewrite_nest(c.nest, plan);
    auto part = analysis::analyze_partition(tn.nest, plan.num_doall);
    ASSERT_TRUE(part.has_value()) << c.name;
    EXPECT_TRUE(part->fully_static()) << c.name;
  }
}

TEST(LoopPartition, HullAtTheInt64LimitIsRefused) {
  // The region arithmetic does +/-1 on hull endpoints; a hull touching the
  // int64 limits must make the analysis refuse (clamped fallback), not
  // emit wrapping code.
  const i64 top = std::numeric_limits<i64>::max();
  loopir::LoopNestBuilder b;
  b.loop("i", top - 4, top - 1);
  b.array("A", {{0, 9}});
  b.assign(b.ref("A", {b.cst(3)}),
           loopir::Expr::add(b.read("A", {b.cst(3)}), loopir::Expr::constant(1)));
  loopir::LoopNest nest = b.build();
  EXPECT_FALSE(analysis::analyze_partition(nest, 1).has_value());
}

TEST(LoopPartition, OverflowingBoundsRefuseConservatively) {
  // Coefficients whose interval product leaves int64: analyze_partition
  // catches the OverflowError and returns nullopt.
  const i64 big = std::numeric_limits<i64>::max() / 2;
  loopir::LoopNestBuilder b;
  b.loop("i", 0, 4);
  b.loop("j", loopir::Bound(loopir::AffineExpr(intlin::Vec{big, 0}, 0)),
         loopir::Bound(loopir::AffineExpr(intlin::Vec{big, 0}, big)));
  b.array("A", {{0, 4}});
  b.assign(b.ref("A", {b.idx(0)}),
           loopir::Expr::add(b.read("A", {b.idx(0)}), loopir::Expr::constant(1)));
  EXPECT_FALSE(analysis::analyze_partition(b.build(), 2).has_value());
}

// ------------------------------------------------------- kernel verifier

/// Runs the full static pipeline (plan, rewrite, partition, emit, verify)
/// and returns the report; requires the partition to exist.
analysis::VerifierReport verify_nest(const loopir::LoopNest& nest,
                                     bool inject_fault = false) {
  trans::TransformPlan plan = plan_for(nest);
  codegen::TransformedNest tn = codegen::rewrite_nest(nest, plan);
  auto part = analysis::analyze_partition(tn.nest, plan.num_doall);
  EXPECT_TRUE(part.has_value());
  std::string tu = codegen::emit_c_partitioned_range_kernel(
      nest, plan, *part, "vdep_range_kernel", inject_fault);
  return analysis::verify_partitioned_kernel(nest, tn.nest, plan.num_doall,
                                             *part, tu);
}

TEST(KernelVerifier, SuiteNestsVerifyCleanly) {
  // Acceptance bar: exact cover + clamp-free steady must be *proved* for
  // every suite nest that partitions.
  for (core::NamedNest& c : core::paper_suite(12)) {
    trans::TransformPlan plan = plan_for(c.nest);
    if (plan.num_doall == 0) continue;
    analysis::VerifierReport rep = verify_nest(c.nest);
    EXPECT_TRUE(rep.ok) << c.name << ": " << rep.summary();
  }
}

TEST(KernelVerifier, TriangularNestVerifies) {
  analysis::VerifierReport rep = verify_nest(triangular_doall(16));
  EXPECT_TRUE(rep.ok) << rep.summary();
  EXPECT_EQ(rep.obligations.size(), 4u);
}

/// j in [i, 2*i], i in [1, 8]: both a lower and an upper clip constraint
/// fight over the axis, and at the full hull box the steady range solves
/// to s_lo = 8 > s_hi = 1 — the canonical-empty normalization kicks in and
/// the prologue absorbs the whole axis. The space itself is NOT empty.
loopir::LoopNest wedge_nest() {
  loopir::LoopNestBuilder b;
  b.loop("i", 1, 8);
  b.loop("j", loopir::Bound(loopir::AffineExpr(intlin::Vec{1, 0}, 0)),
         loopir::Bound(loopir::AffineExpr(intlin::Vec{2, 0}, 0)));
  b.array("A", {{1, 8}, {1, 16}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
           loopir::Expr::add(b.read("A", {b.idx(0), b.idx(1)}),
                             loopir::Expr::constant(1)));
  return b.build();
}

TEST(KernelVerifier, EmptySteadyRegionStillTilesExactly) {
  loopir::LoopNest nest = wedge_nest();
  EXPECT_GT(nest.iteration_count(), 0);
  trans::TransformPlan plan = plan_for(nest);
  ASSERT_EQ(plan.num_doall, 2);
  codegen::TransformedNest tn = codegen::rewrite_nest(nest, plan);
  auto part = analysis::analyze_partition(tn.nest, plan.num_doall);
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->axis, 0);
  EXPECT_EQ(part->constraints.size(), 2u);
  analysis::VerifierReport rep = verify_nest(nest);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(KernelVerifier, WholeSpaceEmptyNestVerifiesTrivially) {
  // j in [i + 9, 8], i in [0, 8]: the inner hull inverts, the env marks
  // the whole space empty, the partition is fully static and obligation 2
  // passes vacuously.
  loopir::LoopNest nest = triangular_doall(8, /*skew=*/9);
  EXPECT_EQ(nest.iteration_count(), 0);
  analysis::VerifierReport rep = verify_nest(nest);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(KernelVerifier, InjectedFaultIsRejected) {
  analysis::VerifierReport rep =
      verify_nest(triangular_doall(16), /*inject_fault=*/true);
  EXPECT_FALSE(rep.ok);
  EXPECT_FALSE(rep.failures.empty());
  EXPECT_NE(rep.summary().find("rejected"), std::string::npos);
}

TEST(KernelVerifier, TamperedConstraintSetFailsCompleteness) {
  // Drop one clip constraint from the partition: the adversarial nest the
  // acceptance criteria call for. Completeness must fail.
  loopir::LoopNest nest = triangular_doall(16);
  trans::TransformPlan plan = plan_for(nest);
  codegen::TransformedNest tn = codegen::rewrite_nest(nest, plan);
  auto part = analysis::analyze_partition(tn.nest, plan.num_doall);
  ASSERT_TRUE(part.has_value());
  std::string tu = codegen::emit_c_partitioned_range_kernel(
      nest, plan, *part, "vdep_range_kernel");

  analysis::LoopPartition tampered = *part;
  tampered.constraints.clear();
  analysis::VerifierReport rep = analysis::verify_partitioned_kernel(
      nest, tn.nest, plan.num_doall, tampered, tu);
  EXPECT_FALSE(rep.ok);
}

TEST(KernelVerifier, TamperedSourceFailsTheTextualObligation) {
  loopir::LoopNest nest = triangular_doall(12);
  trans::TransformPlan plan = plan_for(nest);
  codegen::TransformedNest tn = codegen::rewrite_nest(nest, plan);
  auto part = analysis::analyze_partition(tn.nest, plan.num_doall);
  ASSERT_TRUE(part.has_value());
  std::string tu = codegen::emit_c_partitioned_range_kernel(
      nest, plan, *part, "vdep_range_kernel");

  // Remove the steady-region end marker: the extraction must fail closed.
  std::string truncated = tu;
  std::size_t pos = truncated.find("/* vdep:region steady end */");
  ASSERT_NE(pos, std::string::npos);
  truncated.erase(pos, 28);
  analysis::VerifierReport rep = analysis::verify_partitioned_kernel(
      nest, tn.nest, plan.num_doall, *part, truncated);
  EXPECT_FALSE(rep.ok);
}

// ---------------------------------------------- end-to-end JIT behaviour

TEST(PartitionedJit, SuiteBitIdentityPartitionedVsClamped) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  // The partitioned and clamped kernels must produce bit-identical stores
  // (and the sequential reference) across the whole suite.
  for (core::NamedNest& c : core::paper_suite(10)) {
    Compiler compiler;
    auto loop = compiler.compile(c.nest);
    ASSERT_TRUE(loop.has_value()) << c.name;

    exec::ArrayStore ref(c.nest);
    ref.fill_pattern();
    exec::ArrayStore init = ref;
    exec::run_sequential(c.nest, ref);

    // Nests with no DOALL prefix have no box loops to specialize:
    // partitioning is (correctly) not attempted there.
    const bool can_partition = loop->plan().transform.num_doall > 0;
    for (bool partition : {true, false}) {
      exec::ArrayStore got = init;
      jit::JitOptions jo;
      jo.partition = partition;
      ExecPolicy policy;
      policy.threads(2).backend(ExecBackend::kJit).jit_options(jo);
      auto rep = loop->execute(policy, got);
      ASSERT_TRUE(rep.has_value()) << c.name << ": " << rep.error().to_string();
      EXPECT_TRUE(rep->jit) << c.name;
      EXPECT_EQ(rep->jit_partitioned, partition && can_partition) << c.name;
      EXPECT_TRUE(ref == got) << c.name << " diverged (partition="
                              << partition << ")";
    }
  }
}

TEST(PartitionedJit, TriangularNestRunsThePartitionedKernel) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  // Non-static bounds: the real prologue/steady/epilogue split, end to end.
  loopir::LoopNest nest = triangular_doall(24);
  Compiler compiler;
  auto loop = compiler.compile(nest);
  ASSERT_TRUE(loop.has_value());

  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore got = ref;
  exec::run_sequential(nest, ref);

  ExecPolicy policy;
  policy.threads(2).backend(ExecBackend::kJit);
  auto rep = loop->execute(policy, got);
  ASSERT_TRUE(rep.has_value()) << rep.error().to_string();
  EXPECT_TRUE(rep->jit);
  EXPECT_TRUE(rep->jit_partitioned);
  EXPECT_EQ(rep->iterations, nest.iteration_count());
  EXPECT_TRUE(ref == got);

  auto kernel = loop->jit();
  ASSERT_TRUE(kernel.has_value());
  EXPECT_TRUE((*kernel)->partitioned());
  EXPECT_NE((*kernel)->partition_verdict().find("verified"), std::string::npos);
  EXPECT_NE((*kernel)->source().find("/* vdep:region steady begin */"),
            std::string::npos);
}

TEST(PartitionedJit, EmptySteadyRegionExecutesBitIdentically) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  // At the root box the wedge nest's steady range is empty (prologue
  // absorbs the whole axis): the degenerate split must still visit every
  // iteration exactly once.
  loopir::LoopNest nest = wedge_nest();
  Compiler compiler;
  auto loop = compiler.compile(nest);
  ASSERT_TRUE(loop.has_value());

  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore got = ref;
  exec::run_sequential(nest, ref);

  ExecPolicy policy;
  policy.threads(2).backend(ExecBackend::kJit);
  auto rep = loop->execute(policy, got);
  ASSERT_TRUE(rep.has_value()) << rep.error().to_string();
  EXPECT_TRUE(rep->jit);
  EXPECT_TRUE(rep->jit_partitioned);
  EXPECT_EQ(rep->iterations, nest.iteration_count());
  EXPECT_TRUE(ref == got);
}

TEST(PartitionedJit, InjectedFaultForcesTheClampedFallbackEndToEnd) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  // The verifier rejection path through the real JIT: the faulty
  // partitioned TU must never load; the clamped kernel runs and stays
  // bit-identical.
  loopir::LoopNest nest = triangular_doall(20);
  Compiler compiler;
  auto loop = compiler.compile(nest);
  ASSERT_TRUE(loop.has_value());

  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore got = ref;
  exec::run_sequential(nest, ref);

  jit::JitOptions jo;
  jo.inject_partition_fault = true;
  ExecPolicy policy;
  policy.threads(2).backend(ExecBackend::kJit).jit_options(jo);
  auto rep = loop->execute(policy, got);
  ASSERT_TRUE(rep.has_value()) << rep.error().to_string();
  EXPECT_TRUE(rep->jit);
  EXPECT_FALSE(rep->jit_partitioned);  // rejected -> clamped
  EXPECT_TRUE(ref == got);

  auto kernel = loop->jit(jo);
  ASSERT_TRUE(kernel.has_value());
  EXPECT_FALSE((*kernel)->partitioned());
  EXPECT_NE((*kernel)->partition_verdict().find("rejected"),
            std::string::npos);
  // The loaded source is the clamped TU — no partitioned fast path.
  EXPECT_EQ((*kernel)->source().find("/* vdep:partitioned begin */"),
            std::string::npos);
}

TEST(PartitionedJit, PartitionOptionsSeparateTheKernelMemo) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  Compiler compiler;
  auto loop = compiler.compile(triangular_doall(10));
  ASSERT_TRUE(loop.has_value());
  jit::JitOptions off;
  off.partition = false;
  auto k_on = loop->jit();
  auto k_off = loop->jit(off);
  ASSERT_TRUE(k_on.has_value());
  ASSERT_TRUE(k_off.has_value());
  EXPECT_NE(k_on->get(), k_off->get());
  EXPECT_TRUE((*k_on)->partitioned());
  EXPECT_FALSE((*k_off)->partitioned());
  EXPECT_TRUE((*k_off)->partition_verdict().empty());
}

}  // namespace
}  // namespace vdep
