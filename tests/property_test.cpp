// Parameterized property suites (TEST_P) sweeping the full pipeline over
// randomized loops, seeds and sizes:
//
//   P1. every empirical (brute-forced) dependence distance lies in the PDM
//       lattice — the PDM is a sound summary;
//   P2. the planned transformation is Theorem-1 legal and its schedule
//       passes the memory-trace verifier;
//   P3. parallel execution reproduces sequential semantics bit for bit;
//   P4. compiled kernels agree with the tree-walking interpreter;
//   P5. emitted transformed C visits the same iteration set (via rewrite
//       bijection), checked structurally.
#include <gtest/gtest.h>

#include <set>

#include "api/vdep.h"
#include "codegen/rewrite.h"
#include "intlin/det.h"
#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/compiled.h"
#include "exec/isdg.h"
#include "exec/verify.h"
#include "loopir/builder.h"
#include "support/rng.h"
#include "trans/planner.h"

namespace vdep {
namespace {

using intlin::i64;
using intlin::Vec;
using loopir::Expr;
using loopir::LoopNest;
using loopir::LoopNestBuilder;

// ------------------------------------------------ randomized 2-deep loops

struct RandomLoopCase {
  std::uint64_t seed;
  i64 n;
};

void PrintTo(const RandomLoopCase& c, std::ostream* os) {
  *os << "seed" << c.seed << "_n" << c.n;
}

LoopNest random_loop(const RandomLoopCase& c) {
  Rng rng(c.seed);
  LoopNestBuilder b;
  b.loop("i1", -c.n, c.n).loop("i2", -c.n, c.n);
  b.array("A", {{-300, 300}});
  b.array("B", {{-300, 300}});
  auto aff = [&] {
    return b.affine({rng.uniform(-3, 3), rng.uniform(-3, 3)}, rng.uniform(-4, 4));
  };
  // One or two statements, A and possibly B, with 1-2 reads each.
  b.assign(b.ref("A", {aff()}),
           Expr::add(b.read("A", {aff()}), Expr::constant(rng.uniform(1, 5))));
  if (rng.chance(1, 2)) {
    b.assign(b.ref("B", {aff()}),
             Expr::sub(b.read("A", {aff()}), b.read("B", {aff()})));
  }
  return b.build();
}

class PipelineProperty : public ::testing::TestWithParam<RandomLoopCase> {};

TEST_P(PipelineProperty, PdmCoversEmpiricalDistances) {
  LoopNest nest = random_loop(GetParam());
  dep::Pdm pdm = dep::compute_pdm(nest);
  intlin::Lattice lat = pdm.lattice();
  exec::Isdg g = exec::build_isdg(nest);
  for (const Vec& d : g.distance_vectors())
    EXPECT_TRUE(lat.contains(d))
        << nest.to_string() << "distance " << intlin::to_string(d)
        << " outside " << pdm.to_string();
}

TEST_P(PipelineProperty, PlanIsLegalAndVerified) {
  LoopNest nest = random_loop(GetParam());
  dep::Pdm pdm = dep::compute_pdm(nest);
  trans::TransformPlan plan = trans::plan_transform(pdm);
  EXPECT_TRUE(trans::is_legal_transform(pdm.matrix(), plan.t));
  exec::Schedule sched = exec::build_schedule(nest, plan);
  exec::VerifyResult v = exec::verify_schedule(nest, sched);
  EXPECT_TRUE(v.ok) << nest.to_string()
                    << (v.violations.empty() ? "" : v.violations[0].reason);
  EXPECT_EQ(sched.total_iterations(), nest.iteration_count());
}

TEST_P(PipelineProperty, ParallelMatchesSequential) {
  LoopNest nest = random_loop(GetParam());
  trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
  ThreadPool pool(3);
  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore par = ref;
  exec::run_sequential(nest, ref);
  exec::run_parallel(nest, plan, par, pool);
  EXPECT_EQ(ref, par) << nest.to_string() << plan.to_string();
}

TEST_P(PipelineProperty, CompiledAgreesWithInterpreter) {
  LoopNest nest = random_loop(GetParam());
  exec::ArrayStore a(nest), b(nest);
  a.fill_pattern();
  b.fill_pattern();
  exec::run_sequential(nest, a);
  exec::CompiledKernel(nest, b).run_sequential();
  EXPECT_EQ(a, b) << nest.to_string();
}

TEST_P(PipelineProperty, RewriteIsABijection) {
  LoopNest nest = random_loop(GetParam());
  trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
  codegen::TransformedNest tn = codegen::rewrite_nest(nest, plan);
  std::set<Vec> seen;
  tn.nest.for_each_iteration([&](const Vec& j) {
    EXPECT_TRUE(seen.insert(tn.original_iteration(j)).second);
  });
  EXPECT_EQ(static_cast<i64>(seen.size()), nest.iteration_count());
  for (const Vec& i : nest.iterations()) EXPECT_TRUE(seen.count(i));
}

INSTANTIATE_TEST_SUITE_P(
    RandomLoops, PipelineProperty,
    ::testing::Values(RandomLoopCase{1, 3}, RandomLoopCase{2, 3},
                      RandomLoopCase{3, 4}, RandomLoopCase{4, 4},
                      RandomLoopCase{5, 3}, RandomLoopCase{6, 4},
                      RandomLoopCase{7, 3}, RandomLoopCase{8, 4},
                      RandomLoopCase{9, 5}, RandomLoopCase{10, 5},
                      RandomLoopCase{11, 3}, RandomLoopCase{12, 4},
                      RandomLoopCase{13, 5}, RandomLoopCase{14, 3},
                      RandomLoopCase{15, 4}, RandomLoopCase{16, 5}));

// ------------------------------------------------ suite-kernel sweeps

class SuiteProperty
    : public ::testing::TestWithParam<std::tuple<std::string, i64>> {
 protected:
  LoopNest nest() const {
    for (core::NamedNest& c : core::paper_suite(std::get<1>(GetParam())))
      if (c.name == std::get<0>(GetParam())) return std::move(c.nest);
    throw Error("unknown suite kernel " + std::get<0>(GetParam()));
  }
};

TEST_P(SuiteProperty, EndToEndChecked) {
  LoopNest n = nest();
  vdep::Compiler compiler;
  ThreadPool pool(3);
  vdep::CompiledLoop loop = compiler.compile(n).value();
  // check() errors on divergence from the sequential reference.
  vdep::ExecReport r = loop.check(vdep::ExecPolicy{}, pool).value();
  EXPECT_TRUE(r.verified);
  EXPECT_GE(loop.measure().work_items, 1);
}

TEST_P(SuiteProperty, CrossItemEdgesAlwaysZero) {
  LoopNest n = nest();
  trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(n));
  exec::Schedule sched = exec::build_schedule(n, plan);
  exec::Isdg g = exec::build_isdg(n);
  EXPECT_EQ(g.cross_item_edges(sched), 0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperSuite, SuiteProperty,
    ::testing::Combine(
        ::testing::Values("example_4_1", "example_4_2", "uniform_wavefront",
                          "uniform_blocked", "zero_column",
                          "parity_independent", "sequential_chain",
                          "variable_3deep", "triangular_uniform"),
        ::testing::Values<i64>(3, 5)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, i64>>& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------ HNF/partition sweeps

class LatticePartitionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatticePartitionProperty, ClassesPartitionTheBox) {
  Rng rng(GetParam());
  intlin::Mat gens(2, 2);
  do {
    for (int r = 0; r < 2; ++r)
      for (int c = 0; c < 2; ++c) gens.at(r, c) = rng.uniform(-4, 4);
  } while (intlin::determinant(gens) == 0);
  intlin::Mat h = intlin::hermite_normal_form(gens);
  trans::Partitioning part(h);

  LoopNestBuilder b;
  b.loop("i1", -6, 6).loop("i2", -6, 6);
  b.array("A", {{-6, 6}, {-6, 6}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}), Expr::constant(1));
  LoopNest nest = b.build();

  std::set<Vec> seen;
  for (i64 id = 0; id < part.num_classes(); ++id)
    part.for_each_class_iteration(nest, part.class_label(id), [&](const Vec& i) {
      EXPECT_TRUE(seen.insert(i).second);
      EXPECT_EQ(part.class_id(i), id);
    });
  EXPECT_EQ(static_cast<i64>(seen.size()), nest.iteration_count());
}

TEST_P(LatticePartitionProperty, ResidueEquivalenceMatchesLattice) {
  Rng rng(GetParam() * 7919);
  intlin::Mat gens(2, 2);
  do {
    for (int r = 0; r < 2; ++r)
      for (int c = 0; c < 2; ++c) gens.at(r, c) = rng.uniform(-3, 3);
  } while (intlin::determinant(gens) == 0);
  intlin::Mat h = intlin::hermite_normal_form(gens);
  trans::Partitioning part(h);
  intlin::Lattice lat = intlin::Lattice::from_generators(h);
  Rng sampler(GetParam() + 17);
  for (int k = 0; k < 200; ++k) {
    Vec x{sampler.uniform(-20, 20), sampler.uniform(-20, 20)};
    Vec y{sampler.uniform(-20, 20), sampler.uniform(-20, 20)};
    EXPECT_EQ(part.residue_of(x) == part.residue_of(y),
              lat.contains(intlin::sub(y, x)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticePartitionProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------ 3-deep random pipeline

class Deep3Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Deep3Property, FullPipelinePreservesSemantics) {
  Rng rng(GetParam() * 1000003);
  LoopNestBuilder b;
  b.loop("i1", -2, 2).loop("i2", -2, 2).loop("i3", -2, 2);
  b.array("A", {{-200, 200}});
  auto aff = [&] {
    return b.affine({rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)},
                    rng.uniform(-3, 3));
  };
  b.assign(b.ref("A", {aff()}),
           Expr::add(b.read("A", {aff()}), Expr::constant(1)));
  LoopNest nest = b.build();

  dep::Pdm pdm = dep::compute_pdm(nest);
  trans::TransformPlan plan = trans::plan_transform(pdm);
  EXPECT_TRUE(trans::is_legal_transform(pdm.matrix(), plan.t));

  exec::Schedule sched = exec::build_schedule(nest, plan);
  exec::VerifyResult v = exec::verify_schedule(nest, sched);
  EXPECT_TRUE(v.ok) << nest.to_string();

  ThreadPool pool(3);
  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore par = ref;
  exec::run_sequential(nest, ref);
  exec::run_parallel(nest, plan, par, pool);
  EXPECT_EQ(ref, par) << nest.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Deep3Property,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace vdep
