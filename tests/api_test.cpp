// Tests for the staged compilation API: structural fingerprints, the
// sharded LRU plan cache (including a multi-threaded hammer — this binary
// runs under TSan in CI), Expected error propagation, and the
// bounds-parametric acceptance property: a plan compiled at n=10 executes
// bit-identically at n=100 and n=1000 without re-analysis.
#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <thread>
#include <vector>

#include "api/vdep.h"
#include "core/suite.h"
#include "exec/interpreter.h"
#include "loopir/builder.h"

// Detect ThreadSanitizer so the heavyweight sizes scale down (the hammer
// still runs at full thread count).
#if defined(__SANITIZE_THREAD__)
#define VDEP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VDEP_TSAN 1
#endif
#endif

namespace vdep {
namespace {

using core::example41;
using core::example42;
using loopir::Expr;
using loopir::LoopNest;
using loopir::LoopNestBuilder;

// A[i+k] = A[i] + c over i in [0, n]: structure varies with k, bounds with n.
LoopNest shifted_chain(i64 k, i64 n) {
  LoopNestBuilder b;
  b.loop("i", 0, n);
  b.array("A", {{-16, n + 16}});
  b.assign(b.ref("A", {b.affine({1}, k)}),
           Expr::add(b.read("A", {b.idx(0)}), Expr::constant(1)));
  return b.build();
}

// ------------------------------------------------------------ fingerprint

TEST(Fingerprint, SameStructureDifferentBoundsCollide) {
  EXPECT_EQ(structural_fingerprint(example41(4)),
            structural_fingerprint(example41(77)));
  EXPECT_EQ(structural_fingerprint(core::triangular_uniform(4)),
            structural_fingerprint(core::triangular_uniform(9)));
  EXPECT_EQ(structural_fingerprint(shifted_chain(2, 5)),
            structural_fingerprint(shifted_chain(2, 5000)));
}

TEST(Fingerprint, DifferentSubscriptsMiss) {
  EXPECT_NE(structural_fingerprint(example41(6)),
            structural_fingerprint(example42(6)));
  // Differ only in uniform distance: (1,0)/(0,1) vs (2,0)/(0,2).
  EXPECT_NE(structural_fingerprint(core::uniform_wavefront(6)),
            structural_fingerprint(core::uniform_blocked(6)));
  // Differ only in one subscript constant.
  EXPECT_NE(structural_fingerprint(shifted_chain(1, 9)),
            structural_fingerprint(shifted_chain(2, 9)));
}

TEST(Fingerprint, ArrayNamesCanonicalized) {
  // Renaming every array consistently preserves the dependence structure,
  // so it preserves the fingerprint.
  LoopNestBuilder b1;
  b1.loop("i", 0, 9);
  b1.array("A", {{0, 32}});
  b1.array("B", {{0, 32}});
  b1.assign(b1.ref("A", {b1.affine({1}, 1)}), b1.read("B", {b1.idx(0)}));

  LoopNestBuilder b2;
  b2.loop("i", 0, 9);
  b2.array("X", {{0, 32}});
  b2.array("Y", {{0, 32}});
  b2.assign(b2.ref("X", {b2.affine({1}, 1)}), b2.read("Y", {b2.idx(0)}));
  EXPECT_EQ(structural_fingerprint(b1.build()),
            structural_fingerprint(b2.build()));
}

TEST(Fingerprint, ArrayIdentityStillMatters) {
  // A[i+1] = A[i] has a dependence; A[i+1] = B[i] does not — the
  // canonicalization must keep same-array equality, not erase identity.
  LoopNestBuilder b1;
  b1.loop("i", 0, 9);
  b1.array("A", {{0, 32}});
  b1.assign(b1.ref("A", {b1.affine({1}, 1)}), b1.read("A", {b1.idx(0)}));

  LoopNestBuilder b2;
  b2.loop("i", 0, 9);
  b2.array("A", {{0, 32}});
  b2.array("B", {{0, 32}});
  b2.assign(b2.ref("A", {b2.affine({1}, 1)}), b2.read("B", {b2.idx(0)}));
  EXPECT_NE(structural_fingerprint(b1.build()),
            structural_fingerprint(b2.build()));
}

// -------------------------------------------------------------- LRU cache

std::shared_ptr<const PlanArtifact> dummy_artifact(std::uint64_t hash,
                                                   std::string key) {
  return std::make_shared<PlanArtifact>(Fingerprint{hash, std::move(key)},
                                        LoopAnalysis{}, LoopPlan{});
}

TEST(PlanCache, LruEvictionAtCapacity) {
  PlanCache cache(3, /*shards=*/1);  // one shard: deterministic global LRU
  cache.insert(dummy_artifact(1, "a"));
  cache.insert(dummy_artifact(2, "b"));
  cache.insert(dummy_artifact(3, "c"));
  // Touch "a": "b" becomes the eviction victim.
  EXPECT_NE(cache.find(Fingerprint{1, "a"}), nullptr);
  cache.insert(dummy_artifact(4, "d"));

  EXPECT_EQ(cache.find(Fingerprint{2, "b"}), nullptr);
  EXPECT_NE(cache.find(Fingerprint{1, "a"}), nullptr);
  EXPECT_NE(cache.find(Fingerprint{3, "c"}), nullptr);
  EXPECT_NE(cache.find(Fingerprint{4, "d"}), nullptr);
  CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 3u);
}

TEST(PlanCache, HashCollisionDoesNotConfuseKeys) {
  PlanCache cache(4, 1);
  cache.insert(dummy_artifact(7, "first"));
  cache.insert(dummy_artifact(7, "second"));  // same hash, different key
  auto a = cache.find(Fingerprint{7, "first"});
  auto b = cache.find(Fingerprint{7, "second"});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->fingerprint().key, "first");
  EXPECT_EQ(b->fingerprint().key, "second");
}

TEST(PlanCache, InsertOfDuplicateKeepsResidentArtifact) {
  PlanCache cache(4, 1);
  auto first = cache.insert(dummy_artifact(9, "x"));
  auto second = cache.insert(dummy_artifact(9, "x"));
  EXPECT_EQ(first.get(), second.get());  // racing loser adopts the winner
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(Compiler, EvictedStructureRecompiles) {
  Compiler compiler(CompileOptions{}.cache_capacity(2).cache_shards(1));
  compiler.compile(shifted_chain(1, 9)).value();
  compiler.compile(shifted_chain(2, 9)).value();
  compiler.compile(shifted_chain(3, 9)).value();  // evicts shifted_chain(1)
  EXPECT_GE(compiler.cache_stats().evictions, 1);
  compiler.compile(shifted_chain(1, 9)).value();  // miss again, recompiled
  CacheStats s = compiler.cache_stats();
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 4);
  EXPECT_LE(s.entries, 2u);
}

// ------------------------------------------------------------- staged API

TEST(Compiler, CacheHitSharesArtifactAndCodegenMemo) {
  Compiler compiler;
  CompiledLoop a = compiler.compile(example41(6)).value();
  CompiledLoop b = compiler.compile(example41(6)).value();
  EXPECT_EQ(&a.analysis(), &b.analysis());
  EXPECT_EQ(&a.plan(), &b.plan());
  // Same artifact + same bounds + same options => same emitted string.
  EXPECT_EQ(&a.codegen(), &b.codegen());
  CacheStats s = compiler.cache_stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
}

TEST(Compiler, RebindRejectsDifferentStructure) {
  Compiler compiler;
  CompiledLoop loop = compiler.compile(example41(6)).value();
  Expected<CompiledLoop> bad = loop.at(example42(6));
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().kind, ErrorKind::kPrecondition);
}

// Acceptance: a CompiledLoop compiled at n=10 executes bit-identically
// (vs the sequential reference) at n=100 and n=1000 via the streaming
// runtime without re-analysis.
TEST(Compiler, PlanCompiledAtTenServesLargeBounds) {
  Compiler compiler;
  CompiledLoop small = compiler.compile(example41(10)).value();
#ifdef VDEP_TSAN
  const std::vector<i64> sizes = {100, 300};  // TSan: same property, ~10x cheaper
#else
  const std::vector<i64> sizes = {100, 1000};
#endif
  for (i64 n : sizes) {
    CompiledLoop big = small.at(example41(n)).value();
    EXPECT_EQ(&big.analysis(), &small.analysis());  // no re-analysis
    ExecReport r =
        big.check(ExecPolicy{}.mode(ExecMode::kStreaming).threads(4)).value();
    EXPECT_TRUE(r.verified) << "n=" << n;
    EXPECT_EQ(r.iterations, (2 * n + 1) * (2 * n + 1)) << "n=" << n;
  }
  // at() rebinds without touching the cache: still exactly one cold compile.
  CacheStats s = compiler.cache_stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 0);
}

TEST(Expected, ValueOrAndMonadicComposition) {
  Expected<int> ok = 3;
  Expected<int> err = ApiError{ErrorKind::kUnsupported, "nope"};
  EXPECT_EQ(ok.value_or(9), 3);
  EXPECT_EQ(err.value_or(9), 9);
  EXPECT_EQ(ok.map([](int v) { return v * 2; }).value(), 6);
  EXPECT_EQ(err.map([](int v) { return v * 2; }).error().kind,
            ErrorKind::kUnsupported);
  EXPECT_THROW(err.value(), UnsupportedError);  // raise() restores the type
}

// ------------------------------------------------------------ hammer test
//
// N threads x M compiles through one shared Compiler whose capacity is far
// below the working set, so lookups, inserts, evictions and racing
// same-structure compiles all interleave; a subset of iterations also
// executes + verifies the compiled plan. Runs under TSan in CI.
TEST(PlanCacheHammer, ConcurrentCompileExecuteEvict) {
  constexpr int kThreads = 8;
#ifdef VDEP_TSAN
  constexpr int kItersPerThread = 12;
#else
  constexpr int kItersPerThread = 48;
#endif

  // 30 nests over 10 distinct structures (3 sizes each).
  std::vector<loopir::LoopNest> nests;
  for (i64 n : {i64{3}, i64{4}, i64{5}})
    for (core::NamedNest& c : core::paper_suite(n))
      nests.push_back(std::move(c.nest));

  Compiler compiler(CompileOptions{}.cache_capacity(4).cache_shards(2));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const loopir::LoopNest& nest =
            nests[static_cast<std::size_t>(t * 7 + i) % nests.size()];
        Expected<CompiledLoop> loop = compiler.compile(nest);
        if (!loop) {
          ++failures;
          continue;
        }
        if (!loop->plan().legal) ++failures;
        if (loop->analysis().pdm.depth() != nest.depth()) ++failures;
        if (i % 8 == t % 8) {
          Expected<ExecReport> r =
              loop->check(ExecPolicy{}.threads(2).grain(1));
          if (!r || !r->verified) ++failures;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  CacheStats s = compiler.cache_stats();
  // Every compile is exactly one find(): hit or miss, nothing lost.
  EXPECT_EQ(s.hits + s.misses, kThreads * kItersPerThread);
  EXPECT_LE(s.entries, compiler.options().cache_capacity());
  EXPECT_GT(s.evictions, 0);
}

// ------------------------------------------------------------ compile_all

TEST(CompileAll, SameStructureAnalyzedOnce) {
  Compiler compiler;
  std::vector<loopir::LoopNest> nests;
  for (i64 n : {i64{4}, i64{9}, i64{16}, i64{25}, i64{36}, i64{49}, i64{64},
                i64{81}})
    nests.push_back(example41(n));
  std::vector<CompiledLoop> loops = compiler.compile_all(nests).value();
  ASSERT_EQ(loops.size(), nests.size());
  // One shared artifact: every handle's stage pointers are identical.
  for (const CompiledLoop& l : loops)
    EXPECT_EQ(&l.analysis(), &loops[0].analysis());
  // Batch-local dedup means one cache probe total: 1 miss, 0 hits (a
  // naive compile() loop would have produced 1 miss + 7 hits).
  CacheStats s = compiler.cache_stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 0);
}

TEST(CompileAll, MixedStructuresOneAnalysisEach) {
  Compiler compiler;
  std::vector<loopir::LoopNest> nests;
  // 3 structures x 3 sizes, interleaved.
  for (i64 n : {i64{4}, i64{6}, i64{8}}) {
    nests.push_back(example41(n));
    nests.push_back(example42(n));
    nests.push_back(core::zero_column(n));
  }
  std::vector<CompiledLoop> loops = compiler.compile_all(nests).value();
  ASSERT_EQ(loops.size(), 9u);
  CacheStats s = compiler.cache_stats();
  EXPECT_EQ(s.misses, 3);
  EXPECT_EQ(s.hits, 0);
  // Same-structure entries share artifacts across the interleaving.
  EXPECT_EQ(&loops[0].analysis(), &loops[3].analysis());
  EXPECT_EQ(&loops[1].analysis(), &loops[4].analysis());
  EXPECT_EQ(&loops[2].analysis(), &loops[8].analysis());
  EXPECT_NE(&loops[0].analysis(), &loops[1].analysis());
}

// An invalid nest: the validating LoopNest constructor rejects anything
// structurally broken at construction, so the only invalid value that can
// reach compile() is the default-constructed empty nest (depth 0).
loopir::LoopNest broken_nest() { return loopir::LoopNest{}; }

TEST(CompileAll, FailingNestSurfacesIndexRestStillCompiles) {
  Compiler compiler;
  std::vector<loopir::LoopNest> nests;
  nests.push_back(example41(6));
  nests.push_back(broken_nest());
  nests.push_back(example42(6));

  Expected<std::vector<CompiledLoop>> r = compiler.compile_all(nests);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().kind, ErrorKind::kPrecondition);
  EXPECT_EQ(r.error().index, 1);
  EXPECT_NE(r.error().message.find("nest 1"), std::string::npos);

  // The healthy entries still landed in the cache: retrying without the
  // bad nest is pure hits.
  CacheStats before = compiler.cache_stats();
  EXPECT_EQ(before.misses, 2);
  std::vector<loopir::LoopNest> good = {example41(6), example42(6)};
  ASSERT_TRUE(compiler.compile_all(good).has_value());
  CacheStats after = compiler.cache_stats();
  EXPECT_EQ(after.misses, 2);
  EXPECT_EQ(after.hits, before.hits + 2);
}

// ---------------------------------------------------------- execute_batch

TEST(ExecuteBatch, MatchesIndividualExecution) {
  Compiler compiler;
  CompiledLoop loop = compiler.compile(example41(5)).value();
  std::vector<loopir::LoopNest> bounds;
  for (i64 n : {i64{5}, i64{7}, i64{9}, i64{11}, i64{5}, i64{13}})
    bounds.push_back(example41(n));

  ExecPolicy policy = ExecPolicy{}.threads(2);
  std::vector<ExecReport> reports =
      loop.execute_batch(bounds, policy).value();
  ASSERT_EQ(reports.size(), bounds.size());

  for (std::size_t k = 0; k < bounds.size(); ++k) {
    CompiledLoop h = loop.at(bounds[k]).value();
    exec::ArrayStore store(h.nest());
    store.fill_pattern();
    ExecReport single = h.execute(policy, store).value();
    EXPECT_EQ(reports[k].checksum, single.checksum) << "request " << k;
    EXPECT_EQ(reports[k].iterations, single.iterations) << "request " << k;
  }
}

TEST(ExecuteBatch, AllBackendsAgreeThroughTheBatchPath) {
  // The batch path has its own kernel plumbing (shared scan prototype
  // rebound per store, one native kernel per group): cross-check it
  // against the sequential reference per backend, like the differential
  // harness does for single execute().
  Compiler compiler;
  CompiledLoop loop = compiler.compile(example42(7)).value();
  exec::ArrayStore ref(loop.nest());
  ref.fill_pattern();
  exec::ArrayStore init = ref;
  exec::run_sequential(loop.nest(), ref);

  for (ExecBackend b : {ExecBackend::kInterpreter, ExecBackend::kCompiled,
                        ExecBackend::kJit}) {
    std::vector<exec::ArrayStore> stores(4, init);
    std::vector<exec::ArrayStore*> ptrs;
    for (auto& s : stores) ptrs.push_back(&s);
    std::vector<ExecReport> reports =
        loop.execute_batch(ptrs, ExecPolicy{}.threads(3).backend(b)).value();
    ASSERT_EQ(reports.size(), 4u);
    for (std::size_t k = 0; k < stores.size(); ++k)
      EXPECT_TRUE(stores[k] == ref)
          << "backend " << static_cast<int>(b) << " request " << k;
  }
}

TEST(ExecuteBatch, MixedStructureFreeFunction) {
  Compiler compiler;
  std::vector<loopir::LoopNest> nests = {example41(6), example42(6),
                                         core::zero_column(12), example41(9)};
  std::vector<CompiledLoop> loops = compiler.compile_all(nests).value();

  std::vector<BatchRequest> requests;
  for (const CompiledLoop& l : loops) requests.push_back({l, nullptr});
  std::vector<ExecReport> reports =
      execute_batch(requests, ExecPolicy{}.threads(2), compiler.pool())
          .value();
  ASSERT_EQ(reports.size(), loops.size());

  for (std::size_t k = 0; k < loops.size(); ++k) {
    exec::ArrayStore store(loops[k].nest());
    store.fill_pattern();
    ExecReport single =
        loops[k].execute(ExecPolicy{}.threads(2), store).value();
    EXPECT_EQ(reports[k].checksum, single.checksum) << "request " << k;
  }
}

TEST(ExecuteBatch, WrongStructureBoundsSurfaceIndex) {
  Compiler compiler;
  CompiledLoop loop = compiler.compile(example41(5)).value();
  std::vector<loopir::LoopNest> bounds = {example41(6), example41(7),
                                          example42(6)};
  Expected<std::vector<ExecReport>> r = loop.execute_batch(bounds);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().kind, ErrorKind::kPrecondition);
  EXPECT_EQ(r.error().index, 2);
}

TEST(ExecuteBatch, MaterializedModeRejected) {
  Compiler compiler;
  CompiledLoop loop = compiler.compile(example41(5)).value();
  std::vector<loopir::LoopNest> bounds = {example41(5)};
  Expected<std::vector<ExecReport>> r =
      loop.execute_batch(bounds, ExecPolicy{}.mode(ExecMode::kMaterialized));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().kind, ErrorKind::kPrecondition);
}

TEST(ExecuteBatch, EmptyBatchIsEmptySuccess) {
  Compiler compiler;
  CompiledLoop loop = compiler.compile(example41(5)).value();
  EXPECT_TRUE(
      loop.execute_batch(std::span<const loopir::LoopNest>{}).value().empty());
}

// N threads x M batches through one shared session and its pool: the
// batch scheduler, the plan-cache memos and ThreadPool::parallel_for all
// interleave. Runs under TSan in CI.
TEST(ExecuteBatchHammer, ConcurrentBatchesOnSharedSessionPool) {
  constexpr int kThreads = 4;
#ifdef VDEP_TSAN
  constexpr int kBatchesPerThread = 3;
#else
  constexpr int kBatchesPerThread = 8;
#endif
  Compiler compiler(CompileOptions{}.pool_threads(3));
  CompiledLoop loop = compiler.compile(example41(6)).value();

  // Expected per-size checksums, computed once serially.
  std::vector<loopir::LoopNest> bounds;
  for (i64 n : {i64{6}, i64{8}, i64{10}, i64{12}}) bounds.push_back(example41(n));
  std::vector<i64> expected;
  for (const loopir::LoopNest& b : bounds) {
    CompiledLoop h = loop.at(b).value();
    exec::ArrayStore store(h.nest());
    store.fill_pattern();
    expected.push_back(h.execute(ExecPolicy{}.threads(1), store)->checksum);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kBatchesPerThread; ++i) {
        Expected<std::vector<ExecReport>> r = loop.execute_batch(
            bounds, ExecPolicy{}.threads(3), compiler.pool());
        if (!r || r->size() != bounds.size()) {
          ++failures;
          continue;
        }
        for (std::size_t k = 0; k < bounds.size(); ++k)
          if ((*r)[k].checksum != expected[k]) ++failures;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// The structural fingerprint deliberately ignores body constants and
// operators (the analysis is a function of the access sequence only), so
// `A[i+1]=A[i]+1` and `A[i+1]=A[i]+2` share one PlanArtifact — but their
// emitted C, native kernels and batch kernel-sharing groups must NOT be
// shared: the bounds-level memo key (bounds_render) carries the body.
TEST(BoundsRender, SameFingerprintDifferentBodySeparatesMemosAndBatches) {
  loopir::LoopNest plus1 = [] {
    LoopNestBuilder b;
    b.loop("i", 0, 9);
    b.array("A", {{-16, 32}});
    b.assign(b.ref("A", {b.affine({1}, 1)}),
             Expr::add(b.read("A", {b.idx(0)}), Expr::constant(1)));
    return b.build();
  }();
  loopir::LoopNest plus2 = [] {
    LoopNestBuilder b;
    b.loop("i", 0, 9);
    b.array("A", {{-16, 32}});
    b.assign(b.ref("A", {b.affine({1}, 1)}),
             Expr::add(b.read("A", {b.idx(0)}), Expr::constant(2)));
    return b.build();
  }();
  ASSERT_EQ(structural_fingerprint(plus1), structural_fingerprint(plus2));
  EXPECT_NE(bounds_render(plus1), bounds_render(plus2));

  Compiler compiler;
  CompiledLoop l1 = compiler.compile(plus1).value();
  CompiledLoop l2 = compiler.compile(plus2).value();
  EXPECT_EQ(&l1.analysis(), &l2.analysis());  // one artifact by design
  // Distinct emitted C despite the shared artifact and identical bounds.
  EXPECT_NE(l1.codegen(), l2.codegen());

  // And distinct batch execution: each request must run ITS body.
  std::vector<BatchRequest> requests;
  exec::ArrayStore s1(plus1), s2(plus2);
  s1.fill_pattern();
  s2.fill_pattern();
  requests.push_back({l1, &s1});
  requests.push_back({l2, &s2});
  ASSERT_TRUE(execute_batch(requests, ExecPolicy{}.threads(2)).has_value());
  exec::ArrayStore r1(plus1), r2(plus2);
  r1.fill_pattern();
  r2.fill_pattern();
  exec::run_sequential(plus1, r1);
  exec::run_sequential(plus2, r2);
  EXPECT_TRUE(s1 == r1);
  EXPECT_TRUE(s2 == r2);
}

// -------------------------------------------------- overflow diagnostics
//
// uniform_wavefront's values are binomial in n (A[i][j] sums two
// neighbors), so exact arithmetic must refuse large sizes instead of
// wrapping. PR 2 reported-and-skipped this in the example sweep; the
// contract is now a first-class typed diagnostic: any API-level execution
// of an overflowing nest returns ErrorKind::kOverflow.
TEST(OverflowDiagnostic, WavefrontOverflowIsTypedNotSilent) {
  Compiler compiler;
  CompiledLoop big = compiler.compile(core::uniform_wavefront(60)).value();
  Expected<ExecReport> r = big.check(ExecPolicy{}.threads(2));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().kind, ErrorKind::kOverflow);
  EXPECT_NE(r.error().message.find("overflow"), std::string::npos);

  // The same structure at a safe size executes and verifies cleanly (the
  // diagnostic is about the bounds, not the structure).
  CompiledLoop small = big.at(core::uniform_wavefront(20)).value();
  EXPECT_TRUE(small.check(ExecPolicy{}.threads(2))->verified);
}

}  // namespace
}  // namespace vdep
