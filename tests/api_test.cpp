// Tests for the staged compilation API: structural fingerprints, the
// sharded LRU plan cache (including a multi-threaded hammer — this binary
// runs under TSan in CI), Expected error propagation, and the
// bounds-parametric acceptance property: a plan compiled at n=10 executes
// bit-identically at n=100 and n=1000 without re-analysis.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/vdep.h"
#include "core/suite.h"
#include "loopir/builder.h"

// Detect ThreadSanitizer so the heavyweight sizes scale down (the hammer
// still runs at full thread count).
#if defined(__SANITIZE_THREAD__)
#define VDEP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VDEP_TSAN 1
#endif
#endif

namespace vdep {
namespace {

using core::example41;
using core::example42;
using loopir::Expr;
using loopir::LoopNest;
using loopir::LoopNestBuilder;

// A[i+k] = A[i] + c over i in [0, n]: structure varies with k, bounds with n.
LoopNest shifted_chain(i64 k, i64 n) {
  LoopNestBuilder b;
  b.loop("i", 0, n);
  b.array("A", {{-16, n + 16}});
  b.assign(b.ref("A", {b.affine({1}, k)}),
           Expr::add(b.read("A", {b.idx(0)}), Expr::constant(1)));
  return b.build();
}

// ------------------------------------------------------------ fingerprint

TEST(Fingerprint, SameStructureDifferentBoundsCollide) {
  EXPECT_EQ(structural_fingerprint(example41(4)),
            structural_fingerprint(example41(77)));
  EXPECT_EQ(structural_fingerprint(core::triangular_uniform(4)),
            structural_fingerprint(core::triangular_uniform(9)));
  EXPECT_EQ(structural_fingerprint(shifted_chain(2, 5)),
            structural_fingerprint(shifted_chain(2, 5000)));
}

TEST(Fingerprint, DifferentSubscriptsMiss) {
  EXPECT_NE(structural_fingerprint(example41(6)),
            structural_fingerprint(example42(6)));
  // Differ only in uniform distance: (1,0)/(0,1) vs (2,0)/(0,2).
  EXPECT_NE(structural_fingerprint(core::uniform_wavefront(6)),
            structural_fingerprint(core::uniform_blocked(6)));
  // Differ only in one subscript constant.
  EXPECT_NE(structural_fingerprint(shifted_chain(1, 9)),
            structural_fingerprint(shifted_chain(2, 9)));
}

TEST(Fingerprint, ArrayNamesCanonicalized) {
  // Renaming every array consistently preserves the dependence structure,
  // so it preserves the fingerprint.
  LoopNestBuilder b1;
  b1.loop("i", 0, 9);
  b1.array("A", {{0, 32}});
  b1.array("B", {{0, 32}});
  b1.assign(b1.ref("A", {b1.affine({1}, 1)}), b1.read("B", {b1.idx(0)}));

  LoopNestBuilder b2;
  b2.loop("i", 0, 9);
  b2.array("X", {{0, 32}});
  b2.array("Y", {{0, 32}});
  b2.assign(b2.ref("X", {b2.affine({1}, 1)}), b2.read("Y", {b2.idx(0)}));
  EXPECT_EQ(structural_fingerprint(b1.build()),
            structural_fingerprint(b2.build()));
}

TEST(Fingerprint, ArrayIdentityStillMatters) {
  // A[i+1] = A[i] has a dependence; A[i+1] = B[i] does not — the
  // canonicalization must keep same-array equality, not erase identity.
  LoopNestBuilder b1;
  b1.loop("i", 0, 9);
  b1.array("A", {{0, 32}});
  b1.assign(b1.ref("A", {b1.affine({1}, 1)}), b1.read("A", {b1.idx(0)}));

  LoopNestBuilder b2;
  b2.loop("i", 0, 9);
  b2.array("A", {{0, 32}});
  b2.array("B", {{0, 32}});
  b2.assign(b2.ref("A", {b2.affine({1}, 1)}), b2.read("B", {b2.idx(0)}));
  EXPECT_NE(structural_fingerprint(b1.build()),
            structural_fingerprint(b2.build()));
}

// -------------------------------------------------------------- LRU cache

std::shared_ptr<const PlanArtifact> dummy_artifact(std::uint64_t hash,
                                                   std::string key) {
  return std::make_shared<PlanArtifact>(Fingerprint{hash, std::move(key)},
                                        LoopAnalysis{}, LoopPlan{});
}

TEST(PlanCache, LruEvictionAtCapacity) {
  PlanCache cache(3, /*shards=*/1);  // one shard: deterministic global LRU
  cache.insert(dummy_artifact(1, "a"));
  cache.insert(dummy_artifact(2, "b"));
  cache.insert(dummy_artifact(3, "c"));
  // Touch "a": "b" becomes the eviction victim.
  EXPECT_NE(cache.find(Fingerprint{1, "a"}), nullptr);
  cache.insert(dummy_artifact(4, "d"));

  EXPECT_EQ(cache.find(Fingerprint{2, "b"}), nullptr);
  EXPECT_NE(cache.find(Fingerprint{1, "a"}), nullptr);
  EXPECT_NE(cache.find(Fingerprint{3, "c"}), nullptr);
  EXPECT_NE(cache.find(Fingerprint{4, "d"}), nullptr);
  CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 3u);
}

TEST(PlanCache, HashCollisionDoesNotConfuseKeys) {
  PlanCache cache(4, 1);
  cache.insert(dummy_artifact(7, "first"));
  cache.insert(dummy_artifact(7, "second"));  // same hash, different key
  auto a = cache.find(Fingerprint{7, "first"});
  auto b = cache.find(Fingerprint{7, "second"});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->fingerprint().key, "first");
  EXPECT_EQ(b->fingerprint().key, "second");
}

TEST(PlanCache, InsertOfDuplicateKeepsResidentArtifact) {
  PlanCache cache(4, 1);
  auto first = cache.insert(dummy_artifact(9, "x"));
  auto second = cache.insert(dummy_artifact(9, "x"));
  EXPECT_EQ(first.get(), second.get());  // racing loser adopts the winner
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(Compiler, EvictedStructureRecompiles) {
  Compiler compiler(CompileOptions{}.cache_capacity(2).cache_shards(1));
  compiler.compile(shifted_chain(1, 9)).value();
  compiler.compile(shifted_chain(2, 9)).value();
  compiler.compile(shifted_chain(3, 9)).value();  // evicts shifted_chain(1)
  EXPECT_GE(compiler.cache_stats().evictions, 1);
  compiler.compile(shifted_chain(1, 9)).value();  // miss again, recompiled
  CacheStats s = compiler.cache_stats();
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 4);
  EXPECT_LE(s.entries, 2u);
}

// ------------------------------------------------------------- staged API

TEST(Compiler, CacheHitSharesArtifactAndCodegenMemo) {
  Compiler compiler;
  CompiledLoop a = compiler.compile(example41(6)).value();
  CompiledLoop b = compiler.compile(example41(6)).value();
  EXPECT_EQ(&a.analysis(), &b.analysis());
  EXPECT_EQ(&a.plan(), &b.plan());
  // Same artifact + same bounds + same options => same emitted string.
  EXPECT_EQ(&a.codegen(), &b.codegen());
  CacheStats s = compiler.cache_stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
}

TEST(Compiler, RebindRejectsDifferentStructure) {
  Compiler compiler;
  CompiledLoop loop = compiler.compile(example41(6)).value();
  Expected<CompiledLoop> bad = loop.at(example42(6));
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().kind, ErrorKind::kPrecondition);
}

// Acceptance: a CompiledLoop compiled at n=10 executes bit-identically
// (vs the sequential reference) at n=100 and n=1000 via the streaming
// runtime without re-analysis.
TEST(Compiler, PlanCompiledAtTenServesLargeBounds) {
  Compiler compiler;
  CompiledLoop small = compiler.compile(example41(10)).value();
#ifdef VDEP_TSAN
  const std::vector<i64> sizes = {100, 300};  // TSan: same property, ~10x cheaper
#else
  const std::vector<i64> sizes = {100, 1000};
#endif
  for (i64 n : sizes) {
    CompiledLoop big = small.at(example41(n)).value();
    EXPECT_EQ(&big.analysis(), &small.analysis());  // no re-analysis
    ExecReport r =
        big.check(ExecPolicy{}.mode(ExecMode::kStreaming).threads(4)).value();
    EXPECT_TRUE(r.verified) << "n=" << n;
    EXPECT_EQ(r.iterations, (2 * n + 1) * (2 * n + 1)) << "n=" << n;
  }
  // at() rebinds without touching the cache: still exactly one cold compile.
  CacheStats s = compiler.cache_stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 0);
}

TEST(Expected, ValueOrAndMonadicComposition) {
  Expected<int> ok = 3;
  Expected<int> err = ApiError{ErrorKind::kUnsupported, "nope"};
  EXPECT_EQ(ok.value_or(9), 3);
  EXPECT_EQ(err.value_or(9), 9);
  EXPECT_EQ(ok.map([](int v) { return v * 2; }).value(), 6);
  EXPECT_EQ(err.map([](int v) { return v * 2; }).error().kind,
            ErrorKind::kUnsupported);
  EXPECT_THROW(err.value(), UnsupportedError);  // raise() restores the type
}

// ------------------------------------------------------------ hammer test
//
// N threads x M compiles through one shared Compiler whose capacity is far
// below the working set, so lookups, inserts, evictions and racing
// same-structure compiles all interleave; a subset of iterations also
// executes + verifies the compiled plan. Runs under TSan in CI.
TEST(PlanCacheHammer, ConcurrentCompileExecuteEvict) {
  constexpr int kThreads = 8;
#ifdef VDEP_TSAN
  constexpr int kItersPerThread = 12;
#else
  constexpr int kItersPerThread = 48;
#endif

  // 30 nests over 10 distinct structures (3 sizes each).
  std::vector<loopir::LoopNest> nests;
  for (i64 n : {i64{3}, i64{4}, i64{5}})
    for (core::NamedNest& c : core::paper_suite(n))
      nests.push_back(std::move(c.nest));

  Compiler compiler(CompileOptions{}.cache_capacity(4).cache_shards(2));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const loopir::LoopNest& nest =
            nests[static_cast<std::size_t>(t * 7 + i) % nests.size()];
        Expected<CompiledLoop> loop = compiler.compile(nest);
        if (!loop) {
          ++failures;
          continue;
        }
        if (!loop->plan().legal) ++failures;
        if (loop->analysis().pdm.depth() != nest.depth()) ++failures;
        if (i % 8 == t % 8) {
          Expected<ExecReport> r =
              loop->check(ExecPolicy{}.threads(2).grain(1));
          if (!r || !r->verified) ++failures;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  CacheStats s = compiler.cache_stats();
  // Every compile is exactly one find(): hit or miss, nothing lost.
  EXPECT_EQ(s.hits + s.misses, kThreads * kItersPerThread);
  EXPECT_LE(s.entries, compiler.options().cache_capacity());
  EXPECT_GT(s.evictions, 0);
}

}  // namespace
}  // namespace vdep
