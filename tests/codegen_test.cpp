// Tests for nest rewriting (unimodular + Fourier-Motzkin bounds) and the C
// emitter — including compiling the emitted C with the host compiler and
// comparing checksums of original vs transformed programs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>

#include "codegen/emit_c.h"
#include "codegen/rewrite.h"
#include "dep/pdm.h"
#include "exec/interpreter.h"
#include "loopir/builder.h"
#include "trans/planner.h"

namespace vdep::codegen {
namespace {

using loopir::Expr;
using loopir::LoopNest;
using loopir::LoopNestBuilder;

LoopNest example41(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", -n, n).loop("i2", -n, n);
  i64 ext = 5 * n + 10;
  b.array("A", {{-ext, ext}, {-ext, ext}});
  b.assign(b.ref("A", {b.affine({3, -2}, 2), b.affine({-2, 3}, -2)}),
           Expr::add(Expr::add(b.read("A", {b.idx(0), b.idx(1)}),
                               b.read("A", {b.affine({1, 0}, 2),
                                            b.affine({0, 1}, -2)})),
                     Expr::constant(1)));
  return b.build();
}

LoopNest example42(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", -n, n).loop("i2", -n, n);
  i64 ext = 3 * n + 10;
  b.array("A", {{-ext, ext}});
  b.array("B", {{-n, n}, {-n, n}});
  b.assign(b.ref("A", {b.affine({1, -2}, 4)}),
           Expr::add(b.read("A", {b.affine({1, -2}, 0)}), Expr::constant(1)));
  b.assign(b.ref("B", {b.idx(0), b.idx(1)}),
           b.read("A", {b.affine({1, -2}, 8)}));
  return b.build();
}

trans::TransformPlan plan_for(const LoopNest& nest) {
  return trans::plan_transform(dep::compute_pdm(nest));
}

// ----------------------------------------------------------- rewriting

TEST(Rewrite, BijectionOnExample41) {
  LoopNest nest = example41(6);
  trans::TransformPlan plan = plan_for(nest);
  TransformedNest tn = rewrite_nest(nest, plan);
  std::set<intlin::Vec> original;
  for (const auto& i : nest.iterations()) original.insert(i);
  std::set<intlin::Vec> mapped;
  i64 count = 0;
  tn.nest.for_each_iteration([&](const intlin::Vec& j) {
    mapped.insert(tn.original_iteration(j));
    ++count;
  });
  EXPECT_EQ(count, static_cast<i64>(original.size()));  // no duplicates
  EXPECT_EQ(mapped, original);                          // exact cover
}

TEST(Rewrite, RoundTripIterationMapping) {
  LoopNest nest = example41(4);
  trans::TransformPlan plan = plan_for(nest);
  TransformedNest tn = rewrite_nest(nest, plan);
  for (const auto& i : nest.iterations()) {
    intlin::Vec j = tn.transformed_iteration(i);
    EXPECT_EQ(tn.original_iteration(j), i);
    EXPECT_TRUE(tn.nest.contains(j));
  }
}

TEST(Rewrite, MarksDoallLevels) {
  LoopNest nest = example41(4);
  trans::TransformPlan plan = plan_for(nest);
  ASSERT_EQ(plan.num_doall, 1);
  TransformedNest tn = rewrite_nest(nest, plan);
  EXPECT_TRUE(tn.nest.level(0).parallel);
  EXPECT_FALSE(tn.nest.level(1).parallel);
}

TEST(Rewrite, SubstitutedBodyComputesSameValues) {
  // Running the rewritten nest sequentially (its own j-order) must produce
  // the same store as the original: j-order is legal by Theorem 1.
  LoopNest nest = example41(5);
  trans::TransformPlan plan = plan_for(nest);
  TransformedNest tn = rewrite_nest(nest, plan);

  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore got = ref;
  exec::run_sequential(nest, ref);
  exec::run_sequential(tn.nest, got);
  EXPECT_EQ(ref, got);
}

TEST(Rewrite, IdentityTransformKeepsBounds) {
  LoopNest nest = example42(7);
  trans::TransformPlan plan = plan_for(nest);
  ASSERT_TRUE(plan.is_identity_transform());
  TransformedNest tn = rewrite_nest(nest, plan);
  EXPECT_EQ(tn.nest.iteration_count(), nest.iteration_count());
  for (const auto& i : nest.iterations())
    EXPECT_EQ(tn.original_iteration(i), i);
}

TEST(Rewrite, RejectsBadShapes) {
  LoopNest nest = example41(3);
  EXPECT_THROW(rewrite_nest(nest, intlin::Mat::identity(3), 0),
               PreconditionError);
  EXPECT_THROW(rewrite_nest(nest, intlin::Mat::identity(2), 5),
               PreconditionError);
}

// ------------------------------------------------------------ emission

TEST(EmitC, OriginalContainsLoopsAndBody) {
  std::string src = emit_c_original(example41(10));
  EXPECT_NE(src.find("for (int64_t i1 = -10; i1 <= 10; ++i1)"), std::string::npos);
  EXPECT_NE(src.find("A(3*i1 - 2*i2 + 2, -2*i1 + 3*i2 - 2)"), std::string::npos);
  EXPECT_NE(src.find("int main(void)"), std::string::npos);
}

TEST(EmitC, TransformedHasDoallAndClasses) {
  LoopNest nest = example41(10);
  std::string src = emit_c_transformed(nest, plan_for(nest));
  EXPECT_NE(src.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(src.find("/* doall */"), std::string::npos);
  EXPECT_NE(src.find("vdep_class"), std::string::npos);
}

TEST(EmitC, PartitionedOnlyPlanEmitsStridedLoops) {
  LoopNest nest = example42(10);
  std::string src = emit_c_transformed(nest, plan_for(nest));
  EXPECT_NE(src.find("vdep_class < 4"), std::string::npos);
  EXPECT_NE(src.find("+= 2"), std::string::npos);  // stride h_kk = 2
}

namespace {

// Compiles `src` and returns the stdout of the produced binary.
std::string compile_and_run(const std::string& src, const std::string& tag) {
  std::string dir = ::testing::TempDir();
  std::string cpath = dir + "/vdep_" + tag + ".c";
  std::string bin = dir + "/vdep_" + tag + ".bin";
  {
    std::ofstream f(cpath);
    f << src;
  }
  std::string cmd = "cc -O1 -std=c99 -o " + bin + " " + cpath + " 2>&1";
  int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "compilation failed for " << tag;
  if (rc != 0) return "";
  FILE* p = popen((bin + " 2>&1").c_str(), "r");
  EXPECT_NE(p, nullptr);
  std::string out;
  char buf[256];
  while (p && fgets(buf, sizeof buf, p)) out += buf;
  if (p) pclose(p);
  return out;
}

}  // namespace

TEST(EmitCIntegration, Example41ChecksumsMatch) {
  LoopNest nest = example41(8);
  std::string a = compile_and_run(emit_c_original(nest), "orig41");
  std::string b = compile_and_run(emit_c_transformed(nest, plan_for(nest)),
                                  "trans41");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(EmitCIntegration, Example42ChecksumsMatch) {
  LoopNest nest = example42(8);
  std::string a = compile_and_run(emit_c_original(nest), "orig42");
  std::string b = compile_and_run(emit_c_transformed(nest, plan_for(nest)),
                                  "trans42");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(EmitCIntegration, UniformLoopChecksumsMatch) {
  LoopNestBuilder b;
  b.loop("i1", 0, 12).loop("i2", 0, 12);
  b.array("A", {{-4, 20}, {-4, 20}});
  b.assign(b.ref("A", {b.affine({1, 0}, 2), b.affine({0, 1}, 0)}),
           Expr::add(b.read("A", {b.idx(0), b.affine({0, 1}, -2)}),
                     b.read("A", {b.affine({1, 0}, 2), b.affine({0, 1}, 2)})));
  LoopNest nest = b.build();
  std::string x = compile_and_run(emit_c_original(nest), "origu");
  std::string y = compile_and_run(emit_c_transformed(nest, plan_for(nest)),
                                  "transu");
  ASSERT_FALSE(x.empty());
  EXPECT_EQ(x, y);
}

}  // namespace
}  // namespace vdep::codegen
