// Tests for the streaming runtime: the Chase-Lev deque, the descriptor
// splitting policy, and end-to-end semantics of the StreamExecutor against
// the sequential reference over the whole paper suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "api/vdep.h"
#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/interpreter.h"
#include "runtime/stream_executor.h"
#include "runtime/work_queue.h"
#include "trans/planner.h"

namespace vdep::runtime {
namespace {

using intlin::i64;
using intlin::Vec;

trans::TransformPlan plan_for(const loopir::LoopNest& nest) {
  return trans::plan_transform(dep::compute_pdm(nest));
}

/// 1-axis box (the legacy rectangle shape) over classes [clo, chi).
TaskDescriptor task(i64 olo, i64 ohi, i64 clo, i64 chi) {
  TaskDescriptor t;
  t.ndims = 1;
  t.lo[0] = olo;
  t.hi[0] = ohi;
  t.class_lo = clo;
  t.class_hi = chi;
  return t;
}

/// N-axis box from (lo, hi) pairs over classes [clo, chi).
TaskDescriptor box(std::vector<std::pair<i64, i64>> dims, i64 clo, i64 chi) {
  TaskDescriptor t;
  t.ndims = static_cast<int>(dims.size());
  for (int d = 0; d < t.ndims; ++d) {
    t.lo[d] = dims[static_cast<std::size_t>(d)].first;
    t.hi[d] = dims[static_cast<std::size_t>(d)].second;
  }
  t.class_lo = clo;
  t.class_hi = chi;
  return t;
}

// ------------------------------------------------------------- work queue

TEST(WorkQueue, OwnerPopIsLifo) {
  WorkStealingDeque q;
  for (i64 k = 0; k < 10; ++k) q.push(task(k, k, 0, 1));
  TaskDescriptor t;
  for (i64 k = 9; k >= 0; --k) {
    ASSERT_TRUE(q.pop(t));
    EXPECT_EQ(t.lo[0], k);
  }
  EXPECT_FALSE(q.pop(t));
}

TEST(WorkQueue, StealIsFifo) {
  WorkStealingDeque q;
  for (i64 k = 0; k < 10; ++k) q.push(task(k, k, 0, 1));
  TaskDescriptor t;
  for (i64 k = 0; k < 10; ++k) {
    ASSERT_TRUE(q.steal(t));
    EXPECT_EQ(t.lo[0], k);
  }
  EXPECT_FALSE(q.steal(t));
}

TEST(WorkQueue, GrowsPastInitialCapacity) {
  WorkStealingDeque q(2);
  for (i64 k = 0; k < 1000; ++k) q.push(task(k, k, 0, 1));
  EXPECT_EQ(q.size_estimate(), 1000);
  TaskDescriptor t;
  for (i64 k = 999; k >= 0; --k) {
    ASSERT_TRUE(q.pop(t));
    EXPECT_EQ(t.lo[0], k);
  }
}

TEST(WorkQueue, ConcurrentStealsConsumeEachTaskOnce) {
  // One owner interleaves pushes and pops; thieves hammer steal. Every id
  // pushed must be consumed exactly once across all parties.
  constexpr i64 kTasks = 20000;
  constexpr int kThieves = 4;
  WorkStealingDeque q(8);
  std::vector<std::atomic<int>> seen(kTasks);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};

  auto consume = [&](const TaskDescriptor& t) {
    seen[static_cast<std::size_t>(t.lo[0])].fetch_add(1);
  };

  std::vector<std::thread> thieves;
  for (int k = 0; k < kThieves; ++k) {
    thieves.emplace_back([&] {
      TaskDescriptor t;
      while (!done.load(std::memory_order_acquire)) {
        if (q.steal(t)) consume(t);
      }
      while (q.steal(t)) consume(t);  // drain the tail
    });
  }

  TaskDescriptor t;
  for (i64 k = 0; k < kTasks; ++k) {
    q.push(task(k, k, 0, 1));
    if (k % 3 == 0 && q.pop(t)) consume(t);
  }
  while (q.pop(t)) consume(t);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  for (i64 k = 0; k < kTasks; ++k)
    ASSERT_EQ(seen[static_cast<std::size_t>(k)].load(), 1) << "task " << k;
}

// ----------------------------------------------------------- descriptors

// Recursively splits like a worker would and collects the leaves.
void collect_leaves(TaskDescriptor t, i64 grain,
                    std::vector<TaskDescriptor>& out) {
  while (can_split(t, grain)) {
    TaskDescriptor high = split(t, grain);
    collect_leaves(high, grain, out);
  }
  out.push_back(t);
}

TEST(TaskSplit, LeavesCoverRootExactlyOnce) {
  for (i64 grain : {1, 3, 7, 100}) {
    TaskDescriptor root = task(-17, 41, 0, 6);
    std::vector<TaskDescriptor> leaves;
    collect_leaves(root, grain, leaves);
    // Every (outer value, class) cell of the rectangle exactly once.
    std::vector<std::pair<i64, i64>> cells;
    for (const TaskDescriptor& l : leaves) {
      EXPECT_LE(l.lo[0], l.hi[0]);
      EXPECT_LT(l.class_lo, l.class_hi);
      EXPECT_LE(l.cells(), std::max<i64>(grain, 1));
      for (i64 v = l.lo[0]; v <= l.hi[0]; ++v)
        for (i64 c = l.class_lo; c < l.class_hi; ++c) cells.push_back({v, c});
    }
    std::sort(cells.begin(), cells.end());
    ASSERT_EQ(std::adjacent_find(cells.begin(), cells.end()), cells.end())
        << "duplicated cell at grain " << grain;
    ASSERT_EQ(static_cast<i64>(cells.size()), root.cells())
        << "dropped cells at grain " << grain;
    EXPECT_EQ(cells.front(), (std::pair<i64, i64>{-17, 0}));
    EXPECT_EQ(cells.back(), (std::pair<i64, i64>{41, 5}));
  }
}

TEST(TaskSplit, ThreeAxisSplitsCoverDisjointly) {
  // The disjoint-cover property of recursive splits must hold over a full
  // 3-axis box x class range, not just the legacy rectangle.
  for (i64 grain : {1, 4, 17}) {
    TaskDescriptor root = box({{0, 5}, {-3, 4}, {2, 9}}, 0, 3);
    std::vector<TaskDescriptor> leaves;
    collect_leaves(root, grain, leaves);
    std::vector<std::array<i64, 4>> cells;
    for (const TaskDescriptor& l : leaves) {
      EXPECT_FALSE(l.empty());
      EXPECT_LE(l.cells(), std::max<i64>(grain, 1));
      for (i64 a = l.lo[0]; a <= l.hi[0]; ++a)
        for (i64 b = l.lo[1]; b <= l.hi[1]; ++b)
          for (i64 c = l.lo[2]; c <= l.hi[2]; ++c)
            for (i64 k = l.class_lo; k < l.class_hi; ++k)
              cells.push_back({a, b, c, k});
    }
    std::sort(cells.begin(), cells.end());
    ASSERT_EQ(std::adjacent_find(cells.begin(), cells.end()), cells.end())
        << "duplicated cell at grain " << grain;
    ASSERT_EQ(static_cast<i64>(cells.size()), root.cells())
        << "dropped cells at grain " << grain;
  }
}

TEST(TaskSplit, RespectsGrainAlongOuter) {
  TaskDescriptor root = task(0, 1023, 0, 1);
  std::vector<TaskDescriptor> leaves;
  collect_leaves(root, 16, leaves);
  for (const TaskDescriptor& l : leaves) {
    EXPECT_LE(l.extent(0), 16);
    EXPECT_GT(l.extent(0), 16 / 2 - 1);  // halving never undershoots much
    EXPECT_EQ(l.class_extent(), 1);
  }
}

TEST(TaskSplit, LongestAxisWinsOutermostFirstOnTies) {
  // The longest axis is halved first...
  TaskDescriptor t = box({{0, 3}, {0, 15}, {0, 3}}, 0, 2);
  EXPECT_EQ(pick_split_axis(t, 1), 1);
  int axis = -1;
  TaskDescriptor high = split(t, 1, &axis);
  EXPECT_EQ(axis, 1);
  EXPECT_EQ(t.extent(1), 8);
  EXPECT_EQ(high.extent(1), 8);
  // ...ties go to the outermost dimension...
  EXPECT_EQ(pick_split_axis(box({{0, 7}, {0, 7}}, 0, 1), 1), 0);
  // ...and the class range only wins when strictly longest.
  EXPECT_EQ(pick_split_axis(box({{0, 3}}, 0, 4), 1), 0);
  EXPECT_EQ(pick_split_axis(box({{0, 3}}, 0, 5), 1),
            TaskDescriptor::kClassAxis);
}

TEST(TaskSplit, DegenerateAxesNeverSplit) {
  // Extent-1 axes must never be chosen, whatever the other axes do.
  TaskDescriptor root = box({{7, 7}, {0, 63}, {-2, -2}}, 0, 1);
  std::vector<TaskDescriptor> leaves;
  collect_leaves(root, 1, leaves);
  EXPECT_EQ(leaves.size(), 64u);
  for (const TaskDescriptor& l : leaves) {
    EXPECT_EQ(l.extent(0), 1);
    EXPECT_EQ(l.extent(1), 1);
    EXPECT_EQ(l.extent(2), 1);
    EXPECT_EQ(l.class_extent(), 1);
  }
  // A fully degenerate box is a leaf even at grain 0.
  EXPECT_FALSE(can_split(box({{3, 3}, {5, 5}}, 2, 3), 0));
}

TEST(TaskSplit, NoDimensionsSplitsClassesOnly) {
  TaskDescriptor root;
  root.class_lo = 0;
  root.class_hi = 8;
  EXPECT_TRUE(can_split(root, 1));
  std::vector<TaskDescriptor> leaves;
  collect_leaves(root, 1, leaves);
  EXPECT_EQ(leaves.size(), 8u);
  for (const TaskDescriptor& l : leaves) EXPECT_EQ(l.class_extent(), 1);
}

TEST(TaskSplit, SingleCellIsNotSplittable) {
  EXPECT_FALSE(can_split(task(3, 3, 2, 3), 1));
  // A multi-cell box splits while it is over the grain, whichever axis
  // carries the extent...
  EXPECT_TRUE(can_split(task(0, 7, 0, 4), 8));
  // ...and is a leaf once cells() fits the grain.
  EXPECT_FALSE(can_split(task(0, 7, 2, 3), 8));
}

TEST(TaskDescriptorIo, ToStringRoundTripsAThreeAxisBox) {
  TaskDescriptor t = box({{-4, 17}, {0, 511}, {2, 2}}, 1, 5);
  std::optional<TaskDescriptor> back = TaskDescriptor::from_string(t.to_string());
  ASSERT_TRUE(back.has_value()) << t.to_string();
  EXPECT_EQ(*back, t);

  // Source tags survive, and dimension-free descriptors round-trip too.
  t.source = 42;
  back = TaskDescriptor::from_string(t.to_string());
  ASSERT_TRUE(back.has_value()) << t.to_string();
  EXPECT_EQ(*back, t);

  TaskDescriptor classes_only;
  classes_only.class_hi = 6;
  back = TaskDescriptor::from_string(classes_only.to_string());
  ASSERT_TRUE(back.has_value()) << classes_only.to_string();
  EXPECT_EQ(*back, classes_only);

  EXPECT_FALSE(TaskDescriptor::from_string("task{box [1, 2}").has_value());
  EXPECT_FALSE(TaskDescriptor::from_string("nonsense").has_value());
}

// ------------------------------------------------- streaming == reference

TEST(Streaming, BitIdenticalToSequentialAcrossPaperSuite) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    for (const core::NamedNest& c : core::paper_suite(6)) {
      exec::ArrayStore ref(c.nest);
      ref.fill_pattern();
      exec::ArrayStore got = ref;
      exec::run_sequential(c.nest, ref);

      StreamOptions so;
      so.num_threads = threads;
      StreamExecutor ex(c.nest, plan_for(c.nest), so);
      RuntimeStats rs = ex.run(got);
      EXPECT_EQ(ref, got) << c.name << " with " << threads << " thread(s)";
      EXPECT_EQ(rs.total_iterations(), c.nest.iteration_count()) << c.name;
    }
  }
}

TEST(Streaming, RunsOnACallerProvidedThreadPool) {
  // The pool overload distributes worker contexts over existing pool
  // threads instead of spawning fresh ones; results stay bit-identical,
  // including when the pool is smaller than the configured worker count.
  ThreadPool pool(2);
  for (std::size_t contexts : {1u, 2u, 6u}) {
    for (const core::NamedNest& c : core::paper_suite(5)) {
      exec::ArrayStore ref(c.nest);
      ref.fill_pattern();
      exec::ArrayStore got = ref;
      exec::run_sequential(c.nest, ref);

      StreamOptions so;
      so.num_threads = contexts;
      StreamExecutor ex(c.nest, plan_for(c.nest), so);
      RuntimeStats rs = ex.run(got, pool);
      EXPECT_EQ(ref, got) << c.name << " with " << contexts << " context(s)";
      EXPECT_EQ(rs.total_iterations(), c.nest.iteration_count()) << c.name;
    }
  }
}

TEST(Streaming, InterpreterFallbackAlsoBitIdentical) {
  for (const core::NamedNest& c : core::paper_suite(5)) {
    exec::ArrayStore ref(c.nest);
    ref.fill_pattern();
    exec::ArrayStore got = ref;
    exec::run_sequential(c.nest, ref);

    StreamOptions so;
    so.num_threads = 2;
    so.force_interpreter = true;
    StreamExecutor ex(c.nest, plan_for(c.nest), so);
    ex.run(got);
    EXPECT_EQ(ref, got) << c.name;
  }
}

TEST(Streaming, TraceCoversIterationSpaceExactlyOnce) {
  for (const core::NamedNest& c : core::paper_suite(5)) {
    StreamOptions so;
    so.num_threads = 4;
    so.grain = 1;  // maximal splitting: the sharpest coverage stress
    StreamExecutor ex(c.nest, plan_for(c.nest), so);

    std::mutex mu;
    std::vector<Vec> streamed;
    ex.run_trace([&](int, const Vec& it) {
      std::lock_guard<std::mutex> lock(mu);
      streamed.push_back(it);
    });

    std::vector<Vec> expected = c.nest.iterations();
    std::sort(streamed.begin(), streamed.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(streamed, expected) << c.name;
  }
}

// ------------------------------------------------- skewed-extent splitting

TEST(Streaming, SkewedNestSplitsInnerAxesBitIdentically) {
  // Outer extent 2, inner DOALL extent 601: the legacy outer-only splitter
  // produced at most two unsplittable leaves here. N-D boxes must split the
  // inner axis (nonzero inner-axis split counters, many leaves) and still
  // match the sequential reference bit for bit.
  loopir::LoopNest nest = core::skewed_extent(600);
  trans::TransformPlan plan = plan_for(nest);
  ASSERT_EQ(plan.num_doall, 2);

  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore init = ref;
  exec::run_sequential(nest, ref);

  StreamOptions so;
  so.num_threads = 8;
  StreamExecutor ex(nest, plan, so);
  EXPECT_EQ(ex.boxed_dims(), 2);
  exec::ArrayStore got = init;
  RuntimeStats rs = ex.run(got);
  EXPECT_EQ(ref, got);
  EXPECT_EQ(rs.total_iterations(), nest.iteration_count());
  EXPECT_GT(rs.total_inner_splits(), 0);
  EXPECT_GT(rs.total_tasks(), 8);  // far beyond the 2 outer-only leaves

  // split_dims = 1 reproduces the legacy single-axis splitter: correct,
  // but stuck at the two outer leaves with zero inner splits.
  StreamOptions legacy;
  legacy.num_threads = 8;
  legacy.split_dims = 1;
  StreamExecutor ex1(nest, plan, legacy);
  EXPECT_EQ(ex1.boxed_dims(), 1);
  exec::ArrayStore got1 = init;
  RuntimeStats rs1 = ex1.run(got1);
  EXPECT_EQ(ref, got1);
  EXPECT_EQ(rs1.total_inner_splits(), 0);
  EXPECT_LE(rs1.total_tasks(), 2);
}

TEST(Streaming, BoxedDimsIntersectDynamicBoundsOnTriangularSpaces) {
  // variable_3deep has two DOALL prefix dimensions after Algorithm 1 whose
  // transformed bounds couple; the hull box over-approximates, so leaves
  // must re-intersect with the dynamic bounds. Maximal splitting is the
  // sharpest stress of that intersection.
  loopir::LoopNest nest = core::variable_3deep(7);
  trans::TransformPlan plan = plan_for(nest);
  ASSERT_GE(plan.num_doall, 2);

  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore got = ref;
  exec::run_sequential(nest, ref);

  StreamOptions so;
  so.num_threads = 4;
  so.grain = 1;
  StreamExecutor ex(nest, plan, so);
  RuntimeStats rs = ex.run(got);
  EXPECT_EQ(ref, got);
  EXPECT_EQ(rs.total_iterations(), nest.iteration_count());
}

TEST(Parallelizer, SplitDimsPolicyAndInnerSplitReporting) {
  vdep::Compiler compiler;
  vdep::CompiledLoop loop = compiler.compile(core::skewed_extent(520)).value();

  vdep::ExecReport nd =
      loop.check(vdep::ExecPolicy{}.threads(8)).value();
  EXPECT_TRUE(nd.verified);
  EXPECT_GT(nd.inner_splits, 0);

  vdep::ExecReport legacy =
      loop.check(vdep::ExecPolicy{}.threads(8).split_dims(1)).value();
  EXPECT_TRUE(legacy.verified);
  EXPECT_EQ(legacy.inner_splits, 0);
  EXPECT_EQ(nd.checksum, legacy.checksum);
}

// ----------------------------------------------------------------- stats

TEST(Stats, TasksEqualSplitsPlusOne) {
  // Every split turns one descriptor into two, so leaves == splits + 1.
  for (const core::NamedNest& c : core::paper_suite(6)) {
    for (std::size_t threads : {1u, 3u}) {
      StreamOptions so;
      so.num_threads = threads;
      StreamExecutor ex(c.nest, plan_for(c.nest), so);
      exec::ArrayStore store(c.nest);
      store.fill_pattern();
      RuntimeStats rs = ex.run(store);
      if (c.nest.iteration_count() == 0) continue;
      EXPECT_EQ(rs.total_tasks(), rs.total_splits() + 1) << c.name;
      EXPECT_LE(rs.total_steals(), rs.total_tasks()) << c.name;
      EXPECT_EQ(rs.total_iterations(), c.nest.iteration_count()) << c.name;
      EXPECT_EQ(rs.workers.size(), threads);
    }
  }
}

TEST(Stats, SingleThreadNeverSteals) {
  loopir::LoopNest nest = core::example42(8);
  StreamOptions so;
  so.num_threads = 1;
  StreamExecutor ex(nest, plan_for(nest), so);
  exec::ArrayStore store(nest);
  store.fill_pattern();
  RuntimeStats rs = ex.run(store);
  EXPECT_EQ(rs.total_steals(), 0);
  EXPECT_GT(rs.total_tasks(), 0);
  EXPECT_GT(rs.wall_ns, 0);
  EXPECT_GE(rs.max_busy_ns(), 0);
  EXPECT_FALSE(rs.to_string().empty());
}

TEST(Stats, DescriptorCountIsIndependentOfIterationCount) {
  // The whole point: schedule state scales with descriptors, not with the
  // iteration space. Ten times the space must not mean ten times the tasks.
  auto tasks_at = [](i64 n) {
    loopir::LoopNest nest = core::example42(n);
    StreamOptions so;
    so.num_threads = 2;
    StreamExecutor ex(nest, plan_for(nest), so);
    exec::ArrayStore store(nest);
    store.fill_pattern();
    return ex.run(store).total_tasks();
  };
  i64 small = tasks_at(10);
  i64 big = tasks_at(100);
  EXPECT_LE(big, 4 * small + 64);  // bounded by splitting policy, not by n^2
}

// ------------------------------------------------------------ staged API

TEST(Parallelizer, StreamingModeChecksWholeSuite) {
  vdep::Compiler compiler;
  ThreadPool pool(3);
  for (const core::NamedNest& c : core::paper_suite(5)) {
    vdep::CompiledLoop loop = compiler.compile(c.nest).value();
    // check() errors on any divergence from the sequential reference.
    vdep::ExecReport r =
        loop.check(vdep::ExecPolicy{}.mode(vdep::ExecMode::kStreaming), pool)
            .value();
    EXPECT_TRUE(r.verified) << c.name;
    EXPECT_GT(r.tasks, 0) << c.name;
  }
}

TEST(Parallelizer, MaterializedModeStillWorks) {
  vdep::Compiler compiler;
  ThreadPool pool(3);
  for (const core::NamedNest& c : core::paper_suite(5)) {
    vdep::CompiledLoop loop = compiler.compile(c.nest).value();
    vdep::ExecReport r =
        loop.check(vdep::ExecPolicy{}.mode(vdep::ExecMode::kMaterialized),
                   pool)
            .value();
    EXPECT_TRUE(r.verified) << c.name;
    EXPECT_EQ(r.steals, 0) << c.name;  // steal counters are streaming-only
  }
}

}  // namespace
}  // namespace vdep::runtime
