// Tests for the streaming runtime: the Chase-Lev deque, the descriptor
// splitting policy, and end-to-end semantics of the StreamExecutor against
// the sequential reference over the whole paper suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "api/vdep.h"
#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/interpreter.h"
#include "runtime/stream_executor.h"
#include "runtime/work_queue.h"
#include "trans/planner.h"

namespace vdep::runtime {
namespace {

using intlin::i64;
using intlin::Vec;

trans::TransformPlan plan_for(const loopir::LoopNest& nest) {
  return trans::plan_transform(dep::compute_pdm(nest));
}

TaskDescriptor task(i64 olo, i64 ohi, i64 clo, i64 chi) {
  TaskDescriptor t;
  t.outer_lo = olo;
  t.outer_hi = ohi;
  t.class_lo = clo;
  t.class_hi = chi;
  return t;
}

// ------------------------------------------------------------- work queue

TEST(WorkQueue, OwnerPopIsLifo) {
  WorkStealingDeque q;
  for (i64 k = 0; k < 10; ++k) q.push(task(k, k, 0, 1));
  TaskDescriptor t;
  for (i64 k = 9; k >= 0; --k) {
    ASSERT_TRUE(q.pop(t));
    EXPECT_EQ(t.outer_lo, k);
  }
  EXPECT_FALSE(q.pop(t));
}

TEST(WorkQueue, StealIsFifo) {
  WorkStealingDeque q;
  for (i64 k = 0; k < 10; ++k) q.push(task(k, k, 0, 1));
  TaskDescriptor t;
  for (i64 k = 0; k < 10; ++k) {
    ASSERT_TRUE(q.steal(t));
    EXPECT_EQ(t.outer_lo, k);
  }
  EXPECT_FALSE(q.steal(t));
}

TEST(WorkQueue, GrowsPastInitialCapacity) {
  WorkStealingDeque q(2);
  for (i64 k = 0; k < 1000; ++k) q.push(task(k, k, 0, 1));
  EXPECT_EQ(q.size_estimate(), 1000);
  TaskDescriptor t;
  for (i64 k = 999; k >= 0; --k) {
    ASSERT_TRUE(q.pop(t));
    EXPECT_EQ(t.outer_lo, k);
  }
}

TEST(WorkQueue, ConcurrentStealsConsumeEachTaskOnce) {
  // One owner interleaves pushes and pops; thieves hammer steal. Every id
  // pushed must be consumed exactly once across all parties.
  constexpr i64 kTasks = 20000;
  constexpr int kThieves = 4;
  WorkStealingDeque q(8);
  std::vector<std::atomic<int>> seen(kTasks);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};

  auto consume = [&](const TaskDescriptor& t) {
    seen[static_cast<std::size_t>(t.outer_lo)].fetch_add(1);
  };

  std::vector<std::thread> thieves;
  for (int k = 0; k < kThieves; ++k) {
    thieves.emplace_back([&] {
      TaskDescriptor t;
      while (!done.load(std::memory_order_acquire)) {
        if (q.steal(t)) consume(t);
      }
      while (q.steal(t)) consume(t);  // drain the tail
    });
  }

  TaskDescriptor t;
  for (i64 k = 0; k < kTasks; ++k) {
    q.push(task(k, k, 0, 1));
    if (k % 3 == 0 && q.pop(t)) consume(t);
  }
  while (q.pop(t)) consume(t);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  for (i64 k = 0; k < kTasks; ++k)
    ASSERT_EQ(seen[static_cast<std::size_t>(k)].load(), 1) << "task " << k;
}

// ----------------------------------------------------------- descriptors

// Recursively splits like a worker would and collects the leaves.
void collect_leaves(TaskDescriptor t, i64 grain, bool has_outer,
                    std::vector<TaskDescriptor>& out) {
  while (can_split(t, grain, has_outer)) {
    TaskDescriptor high = split(t, grain, has_outer);
    collect_leaves(high, grain, has_outer, out);
  }
  out.push_back(t);
}

TEST(TaskSplit, LeavesCoverRootExactlyOnce) {
  for (i64 grain : {1, 3, 7, 100}) {
    TaskDescriptor root = task(-17, 41, 0, 6);
    std::vector<TaskDescriptor> leaves;
    collect_leaves(root, grain, /*has_outer=*/true, leaves);
    // Every (outer value, class) cell of the rectangle exactly once.
    std::vector<std::pair<i64, i64>> cells;
    for (const TaskDescriptor& l : leaves) {
      EXPECT_LE(l.outer_lo, l.outer_hi);
      EXPECT_LT(l.class_lo, l.class_hi);
      for (i64 v = l.outer_lo; v <= l.outer_hi; ++v)
        for (i64 c = l.class_lo; c < l.class_hi; ++c) cells.push_back({v, c});
    }
    std::sort(cells.begin(), cells.end());
    ASSERT_EQ(std::adjacent_find(cells.begin(), cells.end()), cells.end())
        << "duplicated cell at grain " << grain;
    ASSERT_EQ(static_cast<i64>(cells.size()), root.cells())
        << "dropped cells at grain " << grain;
    EXPECT_EQ(cells.front(), (std::pair<i64, i64>{-17, 0}));
    EXPECT_EQ(cells.back(), (std::pair<i64, i64>{41, 5}));
  }
}

TEST(TaskSplit, RespectsGrainAlongOuter) {
  TaskDescriptor root = task(0, 1023, 0, 1);
  std::vector<TaskDescriptor> leaves;
  collect_leaves(root, 16, true, leaves);
  for (const TaskDescriptor& l : leaves) {
    EXPECT_LE(l.outer_extent(), 16);
    EXPECT_GT(l.outer_extent(), 16 / 2 - 1);  // halving never undershoots much
    EXPECT_EQ(l.class_extent(), 1);
  }
}

TEST(TaskSplit, NoOuterDimensionSplitsClassesOnly) {
  TaskDescriptor root = task(0, 0, 0, 8);
  EXPECT_TRUE(can_split(root, 1, /*has_outer=*/false));
  std::vector<TaskDescriptor> leaves;
  collect_leaves(root, 1, false, leaves);
  EXPECT_EQ(leaves.size(), 8u);
  for (const TaskDescriptor& l : leaves) EXPECT_EQ(l.class_extent(), 1);
}

TEST(TaskSplit, SingleCellIsNotSplittable) {
  EXPECT_FALSE(can_split(task(3, 3, 2, 3), 1, true));
  // Without an outer dimension a multi-class range still splits.
  EXPECT_TRUE(can_split(task(0, 7, 0, 4), 8, false));
  EXPECT_FALSE(can_split(task(0, 7, 2, 3), 8, false));
}

// ------------------------------------------------- streaming == reference

TEST(Streaming, BitIdenticalToSequentialAcrossPaperSuite) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    for (const core::NamedNest& c : core::paper_suite(6)) {
      exec::ArrayStore ref(c.nest);
      ref.fill_pattern();
      exec::ArrayStore got = ref;
      exec::run_sequential(c.nest, ref);

      StreamOptions so;
      so.num_threads = threads;
      StreamExecutor ex(c.nest, plan_for(c.nest), so);
      RuntimeStats rs = ex.run(got);
      EXPECT_EQ(ref, got) << c.name << " with " << threads << " thread(s)";
      EXPECT_EQ(rs.total_iterations(), c.nest.iteration_count()) << c.name;
    }
  }
}

TEST(Streaming, RunsOnACallerProvidedThreadPool) {
  // The pool overload distributes worker contexts over existing pool
  // threads instead of spawning fresh ones; results stay bit-identical,
  // including when the pool is smaller than the configured worker count.
  ThreadPool pool(2);
  for (std::size_t contexts : {1u, 2u, 6u}) {
    for (const core::NamedNest& c : core::paper_suite(5)) {
      exec::ArrayStore ref(c.nest);
      ref.fill_pattern();
      exec::ArrayStore got = ref;
      exec::run_sequential(c.nest, ref);

      StreamOptions so;
      so.num_threads = contexts;
      StreamExecutor ex(c.nest, plan_for(c.nest), so);
      RuntimeStats rs = ex.run(got, pool);
      EXPECT_EQ(ref, got) << c.name << " with " << contexts << " context(s)";
      EXPECT_EQ(rs.total_iterations(), c.nest.iteration_count()) << c.name;
    }
  }
}

TEST(Streaming, InterpreterFallbackAlsoBitIdentical) {
  for (const core::NamedNest& c : core::paper_suite(5)) {
    exec::ArrayStore ref(c.nest);
    ref.fill_pattern();
    exec::ArrayStore got = ref;
    exec::run_sequential(c.nest, ref);

    StreamOptions so;
    so.num_threads = 2;
    so.force_interpreter = true;
    StreamExecutor ex(c.nest, plan_for(c.nest), so);
    ex.run(got);
    EXPECT_EQ(ref, got) << c.name;
  }
}

TEST(Streaming, TraceCoversIterationSpaceExactlyOnce) {
  for (const core::NamedNest& c : core::paper_suite(5)) {
    StreamOptions so;
    so.num_threads = 4;
    so.grain = 1;  // maximal splitting: the sharpest coverage stress
    StreamExecutor ex(c.nest, plan_for(c.nest), so);

    std::mutex mu;
    std::vector<Vec> streamed;
    ex.run_trace([&](int, const Vec& it) {
      std::lock_guard<std::mutex> lock(mu);
      streamed.push_back(it);
    });

    std::vector<Vec> expected = c.nest.iterations();
    std::sort(streamed.begin(), streamed.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(streamed, expected) << c.name;
  }
}

// ----------------------------------------------------------------- stats

TEST(Stats, TasksEqualSplitsPlusOne) {
  // Every split turns one descriptor into two, so leaves == splits + 1.
  for (const core::NamedNest& c : core::paper_suite(6)) {
    for (std::size_t threads : {1u, 3u}) {
      StreamOptions so;
      so.num_threads = threads;
      StreamExecutor ex(c.nest, plan_for(c.nest), so);
      exec::ArrayStore store(c.nest);
      store.fill_pattern();
      RuntimeStats rs = ex.run(store);
      if (c.nest.iteration_count() == 0) continue;
      EXPECT_EQ(rs.total_tasks(), rs.total_splits() + 1) << c.name;
      EXPECT_LE(rs.total_steals(), rs.total_tasks()) << c.name;
      EXPECT_EQ(rs.total_iterations(), c.nest.iteration_count()) << c.name;
      EXPECT_EQ(rs.workers.size(), threads);
    }
  }
}

TEST(Stats, SingleThreadNeverSteals) {
  loopir::LoopNest nest = core::example42(8);
  StreamOptions so;
  so.num_threads = 1;
  StreamExecutor ex(nest, plan_for(nest), so);
  exec::ArrayStore store(nest);
  store.fill_pattern();
  RuntimeStats rs = ex.run(store);
  EXPECT_EQ(rs.total_steals(), 0);
  EXPECT_GT(rs.total_tasks(), 0);
  EXPECT_GT(rs.wall_ns, 0);
  EXPECT_GE(rs.max_busy_ns(), 0);
  EXPECT_FALSE(rs.to_string().empty());
}

TEST(Stats, DescriptorCountIsIndependentOfIterationCount) {
  // The whole point: schedule state scales with descriptors, not with the
  // iteration space. Ten times the space must not mean ten times the tasks.
  auto tasks_at = [](i64 n) {
    loopir::LoopNest nest = core::example42(n);
    StreamOptions so;
    so.num_threads = 2;
    StreamExecutor ex(nest, plan_for(nest), so);
    exec::ArrayStore store(nest);
    store.fill_pattern();
    return ex.run(store).total_tasks();
  };
  i64 small = tasks_at(10);
  i64 big = tasks_at(100);
  EXPECT_LE(big, 4 * small + 64);  // bounded by splitting policy, not by n^2
}

// ------------------------------------------------------------ staged API

TEST(Parallelizer, StreamingModeChecksWholeSuite) {
  vdep::Compiler compiler;
  ThreadPool pool(3);
  for (const core::NamedNest& c : core::paper_suite(5)) {
    vdep::CompiledLoop loop = compiler.compile(c.nest).value();
    // check() errors on any divergence from the sequential reference.
    vdep::ExecReport r =
        loop.check(vdep::ExecPolicy{}.mode(vdep::ExecMode::kStreaming), pool)
            .value();
    EXPECT_TRUE(r.verified) << c.name;
    EXPECT_GT(r.tasks, 0) << c.name;
  }
}

TEST(Parallelizer, MaterializedModeStillWorks) {
  vdep::Compiler compiler;
  ThreadPool pool(3);
  for (const core::NamedNest& c : core::paper_suite(5)) {
    vdep::CompiledLoop loop = compiler.compile(c.nest).value();
    vdep::ExecReport r =
        loop.check(vdep::ExecPolicy{}.mode(vdep::ExecMode::kMaterialized),
                   pool)
            .value();
    EXPECT_TRUE(r.verified) << c.name;
    EXPECT_EQ(r.steals, 0) << c.name;  // steal counters are streaming-only
  }
}

}  // namespace
}  // namespace vdep::runtime
