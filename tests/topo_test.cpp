// Tests for the topology layer (sysfs parsing, worker assignment, steal
// rings, affinity helpers) and for the scheduling policies built on it:
// pinning, locality-preferring splits and first-touch placement must never
// change results, only placement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/array_store.h"
#include "exec/interpreter.h"
#include "runtime/driver.h"
#include "runtime/stream_executor.h"
#include "topo/affinity.h"
#include "topo/topology.h"
#include "trans/planner.h"

namespace vdep::topo {
namespace {

using intlin::i64;

// -------------------------------------------------------- sysfs fixtures

/// Builds a sysfs-layout directory under the test temp dir. `cpus` rows are
/// {cpu, core, package, node}; nodes get node<K>/cpulist files, cpus get
/// topology/{core_id, physical_package_id}, and `online` is written as-is
/// (so offline holes and odd whitespace are expressible).
class FixtureSysfs {
 public:
  FixtureSysfs(const std::string& name, const std::string& online,
               const std::vector<CpuInfo>& cpus) {
    namespace fs = std::filesystem;
    root_ = fs::path(::testing::TempDir()) / name;
    fs::remove_all(root_);
    fs::create_directories(root_ / "cpu");
    write(root_ / "cpu" / "online", online);
    std::map<int, std::vector<int>> node_members;
    for (const CpuInfo& c : cpus) {
      fs::path topo =
          root_ / "cpu" / ("cpu" + std::to_string(c.cpu)) / "topology";
      fs::create_directories(topo);
      write(topo / "core_id", std::to_string(c.core));
      write(topo / "physical_package_id", std::to_string(c.package));
      node_members[c.node].push_back(c.cpu);
    }
    for (const auto& [node, members] : node_members) {
      fs::path dir = root_ / "node" / ("node" + std::to_string(node));
      fs::create_directories(dir);
      std::string list;
      for (int c : members) list += (list.empty() ? "" : ",") + std::to_string(c);
      write(dir / "cpulist", list);
    }
  }
  ~FixtureSysfs() { std::filesystem::remove_all(root_); }

  std::string path() const { return root_.string(); }

 private:
  static void write(const std::filesystem::path& p, const std::string& text) {
    std::ofstream out(p);
    out << text << "\n";
  }
  std::filesystem::path root_;
};

/// Two sockets, two NUMA nodes, two SMT threads per core, with cpus 4-5
/// offline: node 0 holds cores {0: cpus 0,8} {1: cpus 1,9}, node 1 holds
/// cores {0: cpus 2,10} {1: cpus 3,11} (core ids repeat across packages,
/// as on real hardware).
std::vector<CpuInfo> two_node_smt() {
  return {
      {0, 0, 0, 0}, {8, 0, 0, 0},   // node 0, core 0 + sibling
      {1, 1, 0, 0}, {9, 1, 0, 0},   // node 0, core 1 + sibling
      {2, 0, 1, 1}, {10, 0, 1, 1},  // node 1, core 0 + sibling
      {3, 1, 1, 1}, {11, 1, 1, 1},  // node 1, core 1 + sibling
  };
}

TEST(TopologySysfs, ParsesMultiNodeSmtWithOfflineHoles) {
  FixtureSysfs fx("vdep_topo_multinode", "0-3,8-11", two_node_smt());
  Topology t = Topology::from_sysfs(fx.path());
  ASSERT_FALSE(t.flat_fallback());
  EXPECT_EQ(t.num_cpus(), 8);
  EXPECT_EQ(t.sockets(), 2);
  EXPECT_EQ(t.numa_nodes(), 2);
  EXPECT_EQ(t.cores(), 4);
  EXPECT_TRUE(t.smt());

  // Slot lookup by kernel cpu id.
  auto slot = [&](int cpu) {
    for (int s = 0; s < t.num_cpus(); ++s)
      if (t.cpus()[static_cast<std::size_t>(s)].cpu == cpu) return s;
    return -1;
  };
  EXPECT_EQ(t.distance(slot(0), slot(0)), Topology::kSameCpu);
  EXPECT_EQ(t.distance(slot(0), slot(8)), Topology::kSmtSibling);
  EXPECT_EQ(t.distance(slot(0), slot(1)), Topology::kSameNode);
  EXPECT_EQ(t.distance(slot(0), slot(2)), Topology::kRemoteNode);
  // Same core id, different package: NOT siblings.
  EXPECT_EQ(t.distance(slot(0), slot(10)), Topology::kRemoteNode);
}

TEST(TopologySysfs, OfflineCpusAreExcluded) {
  // online says 0-2 although topology files exist for 0-3.
  std::vector<CpuInfo> cpus = {{0, 0, 0, 0}, {1, 1, 0, 0}, {2, 2, 0, 0},
                               {3, 3, 0, 0}};
  FixtureSysfs fx("vdep_topo_offline", "0-2", cpus);
  Topology t = Topology::from_sysfs(fx.path());
  EXPECT_EQ(t.num_cpus(), 3);
  for (const CpuInfo& c : t.cpus()) EXPECT_NE(c.cpu, 3);
}

TEST(TopologySysfs, MissingTopologyFilesDegradeToFlatPerCpuCores) {
  namespace fs = std::filesystem;
  fs::path root = fs::path(::testing::TempDir()) / "vdep_topo_bare";
  fs::remove_all(root);
  fs::create_directories(root / "cpu");
  {
    std::ofstream out(root / "cpu" / "online");
    out << "0-3\n";
  }
  Topology t = Topology::from_sysfs(root.string());
  fs::remove_all(root);
  ASSERT_FALSE(t.flat_fallback());
  EXPECT_EQ(t.num_cpus(), 4);
  EXPECT_EQ(t.cores(), 4);   // core defaults to the cpu id: all distinct
  EXPECT_EQ(t.numa_nodes(), 1);
  EXPECT_FALSE(t.smt());
}

TEST(TopologySysfs, UnreadableRootFallsBackFlat) {
  Topology t = Topology::from_sysfs("/nonexistent/vdep/sysfs");
  EXPECT_TRUE(t.flat_fallback());
  EXPECT_EQ(t.num_cpus(), 1);
  EXPECT_EQ(t.numa_nodes(), 1);
}

// ------------------------------------------- assignment and steal rings

TEST(TopologyAssign, SpreadsCoresAcrossNodesBeforeSmt) {
  FixtureSysfs fx("vdep_topo_assign", "0-3,8-11", two_node_smt());
  Topology t = Topology::from_sysfs(fx.path());

  // Two workers land on different NUMA nodes.
  std::vector<int> two = t.assign_workers(2);
  EXPECT_NE(t.cpus()[static_cast<std::size_t>(two[0])].node,
            t.cpus()[static_cast<std::size_t>(two[1])].node);

  // Four workers cover all four physical cores (no SMT doubling yet).
  std::vector<int> four = t.assign_workers(4);
  std::set<std::pair<int, int>> cores;
  for (int s : four) {
    const CpuInfo& c = t.cpus()[static_cast<std::size_t>(s)];
    cores.insert({c.package, c.core});
  }
  EXPECT_EQ(cores.size(), 4u);

  // Eight workers cover all eight hardware threads.
  std::vector<int> eight = t.assign_workers(8);
  EXPECT_EQ(std::set<int>(eight.begin(), eight.end()).size(), 8u);

  // Oversubscription wraps deterministically.
  std::vector<int> twelve = t.assign_workers(12);
  for (std::size_t w = 8; w < 12; ++w) EXPECT_EQ(twelve[w], twelve[w - 8]);
}

TEST(TopologyAssign, StealRingsPartitionOtherWorkersByDistance) {
  FixtureSysfs fx("vdep_topo_rings", "0-3,8-11", two_node_smt());
  Topology t = Topology::from_sysfs(fx.path());
  for (std::size_t n : {2u, 4u, 8u, 12u}) {
    std::vector<int> assignment = t.assign_workers(n);
    for (int self = 0; self < static_cast<int>(n); ++self) {
      std::vector<std::vector<int>> rings = t.steal_rings(assignment, self);
      ASSERT_EQ(rings.size(), static_cast<std::size_t>(Topology::kNumDistances));
      std::set<int> seen;
      for (int d = 0; d < Topology::kNumDistances; ++d) {
        for (int w : rings[static_cast<std::size_t>(d)]) {
          EXPECT_NE(w, self);
          EXPECT_TRUE(seen.insert(w).second) << "worker listed twice";
          EXPECT_EQ(t.distance(assignment[static_cast<std::size_t>(self)],
                               assignment[static_cast<std::size_t>(w)]),
                    d);
        }
      }
      EXPECT_EQ(seen.size(), n - 1) << "rings must cover every other worker";
    }
  }
}

TEST(TopologyAssign, FlatTopologyHasOnlySameNodeRing) {
  Topology t = Topology::flat(4);
  std::vector<int> assignment = t.assign_workers(4);
  std::vector<std::vector<int>> rings = t.steal_rings(assignment, 0);
  EXPECT_TRUE(rings[Topology::kSameCpu].empty());
  EXPECT_TRUE(rings[Topology::kSmtSibling].empty());
  EXPECT_EQ(rings[Topology::kSameNode].size(), 3u);
  EXPECT_TRUE(rings[Topology::kRemoteNode].empty());
}

// ----------------------------------------------------- affinity helpers

TEST(Affinity, SystemTopologyMatchesAllowedCpus) {
  const Topology& t = Topology::system();
  EXPECT_GE(t.num_cpus(), 1);
  if (!pin_supported()) return;
  std::vector<int> allowed = allowed_cpus();
  if (allowed.empty()) return;
  // Every cpu the runtime might pin to must be in the process's mask.
  for (const CpuInfo& c : t.cpus())
    EXPECT_NE(std::find(allowed.begin(), allowed.end(), c.cpu), allowed.end())
        << "cpu " << c.cpu << " not in the affinity mask";
}

TEST(Affinity, GuardPinsAndRestores) {
  if (!pin_supported()) GTEST_SKIP() << "no sched_setaffinity on this host";
  CpuSet before = CpuSet::current();
  ASSERT_FALSE(before.empty());
  const int target = before.cpus().front();
  {
    AffinityGuard guard(target);
    EXPECT_TRUE(guard.pinned());
    CpuSet during = CpuSet::current();
    EXPECT_EQ(during.count(), 1);
    EXPECT_TRUE(during.test(target));
  }
  CpuSet after = CpuSet::current();
  EXPECT_EQ(after.cpus(), before.cpus());
}

TEST(Affinity, VdepPinEnvDisablesPinning) {
  ASSERT_EQ(setenv("VDEP_PIN", "0", 1), 0);
  EXPECT_FALSE(pin_env_enabled());
  EXPECT_FALSE(runtime::detail::effective_pin(true, 8));
  ASSERT_EQ(unsetenv("VDEP_PIN"), 0);
  EXPECT_TRUE(pin_env_enabled());
  // One worker never pins (nothing to place), opt-out always wins.
  EXPECT_FALSE(runtime::detail::effective_pin(true, 1));
  EXPECT_FALSE(runtime::detail::effective_pin(false, 8));
}

// ------------------------------------- scheduling policies are identity-
// ------------------------------------- preserving (results never change)

trans::TransformPlan plan_for(const loopir::LoopNest& nest) {
  return trans::plan_transform(dep::compute_pdm(nest));
}

/// Sequential reference for `nest` from the deterministic pattern fill.
exec::ArrayStore reference(const loopir::LoopNest& nest) {
  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::run_sequential(nest, ref);
  return ref;
}

TEST(TopologyScheduling, PinnedAndUnpinnedRunsAreBitIdentical) {
  struct Case {
    const char* name;
    loopir::LoopNest nest;
  };
  Case cases[] = {
      {"example42", core::example42(40)},
      {"skewed_extent", core::skewed_extent(4000)},
      {"matmul_reduction", core::matmul_reduction(12)},
  };
  for (Case& c : cases) {
    trans::TransformPlan plan = plan_for(c.nest);
    exec::ArrayStore ref = reference(c.nest);
    for (std::size_t threads : {1u, 2u, 8u}) {
      for (bool pin : {false, true}) {
        for (bool locality : {false, true}) {
          runtime::StreamOptions so;
          so.num_threads = threads;
          so.pin_workers = pin;
          so.locality_splits = locality;
          runtime::StreamExecutor ex(c.nest, plan, so);
          exec::ArrayStore store(c.nest);
          store.fill_pattern();
          runtime::RuntimeStats rs = ex.run(store);
          EXPECT_TRUE(ref == store)
              << c.name << " threads=" << threads << " pin=" << pin
              << " locality=" << locality;
          // The invariant tasks == splits + 1 must survive pre-seeding.
          EXPECT_EQ(rs.total_tasks(), rs.total_splits() + 1) << c.name;
        }
      }
    }
  }
}

TEST(TopologyScheduling, StealDistanceCountersSumToTotalSteals) {
  loopir::LoopNest nest = core::skewed_extent(1 << 16);
  trans::TransformPlan plan = plan_for(nest);
  runtime::StreamOptions so;
  so.num_threads = 8;
  so.grain = 256;  // many leaves: steals actually happen
  runtime::StreamExecutor ex(nest, plan, so);
  exec::ArrayStore store(nest);
  store.fill_pattern();
  runtime::RuntimeStats rs = ex.run(store);
  i64 by_distance = 0;
  for (int d = 0; d < runtime::kStealDistances; ++d)
    by_distance += rs.total_steals_by_distance(d);
  EXPECT_EQ(by_distance, rs.total_steals());
  for (const runtime::WorkerStats& w : rs.workers) {
    i64 sum = 0;
    for (int d = 0; d < runtime::kStealDistances; ++d)
      sum += w.steals_by_distance[d];
    EXPECT_EQ(sum, w.steals);
  }
  // The human-readable table carries the distance row.
  EXPECT_NE(rs.to_string().find("steals by distance"), std::string::npos);
}

// ---------------------------------------------------------- first touch

TEST(FirstTouch, PlacementNeverChangesValues) {
  loopir::LoopNest nest = core::skewed_extent(1 << 16);  // > 64 KiB arrays
  exec::ArrayStore serial(nest, exec::ArrayStore::Placement::kSerial);
  exec::ArrayStore touched(nest, exec::ArrayStore::Placement::kFirstTouch, 8);
  EXPECT_TRUE(serial == touched);  // both all-zero
  serial.fill_pattern();
  touched.fill_pattern();
  EXPECT_TRUE(serial == touched);
  EXPECT_EQ(serial.checksum(), touched.checksum());
}

TEST(FirstTouch, ExecutionOverFirstTouchStoreMatchesReference) {
  loopir::LoopNest nest = core::skewed_extent(1 << 16);
  trans::TransformPlan plan = plan_for(nest);
  exec::ArrayStore ref = reference(nest);
  runtime::StreamOptions so;
  so.num_threads = 8;
  runtime::StreamExecutor ex(nest, plan, so);
  exec::ArrayStore store(nest, exec::ArrayStore::Placement::kFirstTouch, 8);
  store.fill_pattern();
  ex.run(store);
  EXPECT_TRUE(ref == store);
}

TEST(FirstTouch, TinyAndOddSizedArraysAreFullyZeroed) {
  // Below the 64 KiB parallel threshold and not page-multiple sized: the
  // serial path and the tail page must still zero every element.
  loopir::LoopNest nest = core::example42(37);
  exec::ArrayStore a(nest, exec::ArrayStore::Placement::kFirstTouch, 8);
  exec::ArrayStore b(nest, exec::ArrayStore::Placement::kSerial);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace vdep::topo
