// Tests for the loop IR: affine expressions, bounds, array references,
// expression trees, nest validation, enumeration and printing.
#include <gtest/gtest.h>

#include "loopir/builder.h"
#include "loopir/nest.h"
#include "support/rng.h"

namespace vdep::loopir {
namespace {

// ------------------------------------------------------------- AffineExpr

TEST(AffineExpr, ConstantAndIndex) {
  AffineExpr c = AffineExpr::constant(2, 7);
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.eval(Vec{10, 20}), 7);
  AffineExpr i1 = AffineExpr::index(2, 1);
  EXPECT_EQ(i1.eval(Vec{10, 20}), 20);
  EXPECT_EQ(i1.last_index_used(), 1);
  EXPECT_EQ(c.last_index_used(), -1);
}

TEST(AffineExpr, Arithmetic) {
  AffineExpr e = AffineExpr(Vec{3, -2}, 2);  // 3*i1 - 2*i2 + 2
  EXPECT_EQ(e.eval(Vec{1, 2}), 1);
  AffineExpr f = e + AffineExpr::index(2, 0);       // 4*i1 - 2*i2 + 2
  EXPECT_EQ(f.eval(Vec{1, 2}), 2);
  AffineExpr g = e.scaled(-1);
  EXPECT_EQ(g.eval(Vec{1, 2}), -1);
  EXPECT_EQ(e.plus_constant(5).eval(Vec{0, 0}), 7);
  EXPECT_EQ((e - e).eval(Vec{4, 5}), 0);
}

TEST(AffineExpr, SubstituteRowConvention) {
  // T = [[1,1],[1,0]]: j = i*T means i = j*Tinv; substitute computes
  // e'(j) = e(j*T). e = i1 => e'(j) = j1 + j2.
  intlin::Mat t = intlin::Mat::from_rows({{1, 1}, {1, 0}});
  AffineExpr e = AffineExpr::index(2, 0);
  AffineExpr s = e.substitute(t);
  for (i64 a = -3; a <= 3; ++a)
    for (i64 b = -3; b <= 3; ++b) {
      Vec j{a, b};
      Vec i = intlin::vec_mat_mul(j, t);
      EXPECT_EQ(s.eval(j), e.eval(i));
    }
}

TEST(AffineExpr, ToString) {
  std::vector<std::string> names{"i1", "i2"};
  EXPECT_EQ(AffineExpr(Vec{3, -2}, 2).to_string(names), "3*i1 - 2*i2 + 2");
  EXPECT_EQ(AffineExpr(Vec{-1, 0}, 0).to_string(names), "-i1");
  EXPECT_EQ(AffineExpr::constant(2, -4).to_string(names), "-4");
  EXPECT_EQ(AffineExpr(Vec{0, 1}, -1).to_string(names), "i2 - 1");
}

// ------------------------------------------------------------------ Bound

TEST(Bound, LowerIsMaxOfCeils) {
  Bound b;
  b.add_term({AffineExpr::constant(1, 7), 2});   // ceil(7/2) = 4
  b.add_term({AffineExpr::constant(1, 3), 1});   // 3
  EXPECT_EQ(b.eval_lower(Vec{0}), 4);
}

TEST(Bound, UpperIsMinOfFloors) {
  Bound b;
  b.add_term({AffineExpr::constant(1, 7), 2});   // floor(7/2) = 3
  b.add_term({AffineExpr::constant(1, 5), 1});   // 5
  EXPECT_EQ(b.eval_upper(Vec{0}), 3);
}

TEST(Bound, AffineTermsUseOuterIndices) {
  // lower bound of i2: max(-10, i1 - 10) at i1 = 3 -> -7.
  Bound b;
  b.add_term({AffineExpr::constant(2, -10), 1});
  b.add_term({AffineExpr(Vec{1, 0}, -10), 1});
  EXPECT_EQ(b.eval_lower(Vec{3, 0}), -7);
  EXPECT_EQ(b.last_index_used(), 0);
}

TEST(Bound, ToString) {
  std::vector<std::string> names{"i1"};
  Bound b;
  b.add_term({AffineExpr::constant(1, -10), 1});
  EXPECT_EQ(b.to_string(names, true), "-10");
  b.add_term({AffineExpr(Vec{1}, 0), 2});
  EXPECT_EQ(b.to_string(names, true), "max(-10, ceil(i1, 2))");
  EXPECT_EQ(b.to_string(names, false), "min(-10, floor(i1, 2))");
}

// --------------------------------------------------------------- ArrayRef

TEST(ArrayRef, ElementAndLinearPart) {
  ArrayRef r{"A", {AffineExpr(Vec{3, -2}, 2), AffineExpr(Vec{-2, 3}, -2)}};
  EXPECT_EQ(r.element_at(Vec{1, 1}), (Vec{3, -1}));
  EXPECT_EQ(r.linear_part(), intlin::Mat::from_rows({{3, -2}, {-2, 3}}));
  EXPECT_EQ(r.constant_part(), (Vec{2, -2}));
  std::vector<std::string> names{"i1", "i2"};
  EXPECT_EQ(r.to_string(names), "A[3*i1 - 2*i2 + 2, -2*i1 + 3*i2 - 2]");
}

// ------------------------------------------------------------------- Expr

TEST(Expr, EvaluationTreeCollectsReads) {
  ArrayRef a{"A", {AffineExpr::index(2, 0)}};
  ArrayRef b{"B", {AffineExpr::index(2, 1)}};
  ExprPtr e = Expr::add(Expr::read(a), Expr::mul(Expr::read(b), Expr::constant(3)));
  std::vector<ArrayRef> reads;
  e->collect_reads(&reads);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].array, "A");
  EXPECT_EQ(reads[1].array, "B");
  std::vector<std::string> names{"i1", "i2"};
  EXPECT_EQ(e->to_string(names), "(A[i1] + (B[i2] * 3))");
}

TEST(Expr, SubstitutedRewritesAllReads) {
  intlin::Mat t = intlin::Mat::from_rows({{0, 1}, {1, 0}});  // swap indices
  ArrayRef a{"A", {AffineExpr::index(2, 0)}};
  ExprPtr e = Expr::sub(Expr::read(a), Expr::constant(1));
  ExprPtr s = e->substituted(t);
  std::vector<ArrayRef> reads;
  s->collect_reads(&reads);
  ASSERT_EQ(reads.size(), 1u);
  // i1 evaluated at j*T picks j2.
  EXPECT_EQ(reads[0].subscripts[0], AffineExpr::index(2, 1));
}

// -------------------------------------------------------------- ArrayDecl

TEST(ArrayDecl, LinearIndexRowMajor) {
  ArrayDecl d{"A", {{-1, 1}, {0, 2}}};
  EXPECT_EQ(d.element_count(), 9);
  EXPECT_EQ(d.linear_index(Vec{-1, 0}), 0);
  EXPECT_EQ(d.linear_index(Vec{-1, 2}), 2);
  EXPECT_EQ(d.linear_index(Vec{0, 0}), 3);
  EXPECT_EQ(d.linear_index(Vec{1, 2}), 8);
  EXPECT_THROW(d.linear_index(Vec{2, 0}), PreconditionError);
  EXPECT_TRUE(d.in_range(Vec{0, 1}));
  EXPECT_FALSE(d.in_range(Vec{0, 3}));
}

// --------------------------------------------------------------- LoopNest

LoopNest square_nest(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", -n, n).loop("i2", -n, n);
  b.array("A", {{-5 * n - 10, 5 * n + 10}, {-5 * n - 10, 5 * n + 10}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
           Expr::add(b.read("A", {b.idx(0), b.idx(1)}), Expr::constant(1)));
  return b.build();
}

TEST(LoopNest, BuilderProducesValidNest) {
  LoopNest nest = square_nest(2);
  EXPECT_EQ(nest.depth(), 2);
  EXPECT_EQ(nest.iteration_count(), 25);
  EXPECT_EQ(nest.index_names(), (std::vector<std::string>{"i1", "i2"}));
}

TEST(LoopNest, EnumerationIsLexicographic) {
  LoopNest nest = square_nest(1);
  std::vector<Vec> iters = nest.iterations();
  ASSERT_EQ(iters.size(), 9u);
  EXPECT_EQ(iters.front(), (Vec{-1, -1}));
  EXPECT_EQ(iters.back(), (Vec{1, 1}));
  for (std::size_t k = 1; k < iters.size(); ++k)
    EXPECT_TRUE(intlin::lex_less(iters[k - 1], iters[k]));
}

TEST(LoopNest, TriangularBounds) {
  // do i1 = 0, 4 ; do i2 = i1, 4 — a triangle of 15 points.
  LoopNestBuilder b;
  b.loop("i1", 0, 4);
  b.loop("i2", Bound(AffineExpr(Vec{1, 0}, 0)), Bound(AffineExpr::constant(2, 4)));
  b.array("A", {{0, 4}});
  b.assign(b.ref("A", {b.idx(1)}), Expr::constant(0));
  LoopNest nest = b.build();
  EXPECT_EQ(nest.iteration_count(), 15);
  EXPECT_TRUE(nest.contains(Vec{2, 3}));
  EXPECT_FALSE(nest.contains(Vec{3, 2}));
}

TEST(LoopNest, AccessesCollectsWritesAndReads) {
  LoopNest nest = square_nest(1);
  auto acc = nest.accesses();
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_TRUE(acc[0].is_write);
  EXPECT_FALSE(acc[1].is_write);
  EXPECT_EQ(acc[0].ref.array, "A");
}

TEST(LoopNest, ValidationCatchesInnerIndexInBound) {
  LoopNestBuilder b;
  b.loop("i1", Bound(AffineExpr(Vec{0, 1}, 0)), Bound(AffineExpr::constant(2, 4)));
  b.loop("i2", 0, 4);
  b.array("A", {{0, 4}});
  b.assign(b.ref("A", {b.idx(0)}), Expr::constant(0));
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(LoopNest, ValidationCatchesUndeclaredArray) {
  LoopNestBuilder b;
  b.loop("i1", 0, 4);
  b.assign(ArrayRef{"Ghost", {AffineExpr::index(1, 0)}}, Expr::constant(0));
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(LoopNest, ValidationCatchesArityMismatch) {
  LoopNestBuilder b;
  b.loop("i1", 0, 4);
  b.array("A", {{0, 4}, {0, 4}});
  b.assign(b.ref("A", {b.idx(0)}), Expr::constant(0));
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(LoopNest, ToStringRoundTripShape) {
  LoopNest nest = square_nest(10);
  std::string s = nest.to_string();
  EXPECT_NE(s.find("do i1 = -10, 10"), std::string::npos);
  EXPECT_NE(s.find("do i2 = -10, 10"), std::string::npos);
  EXPECT_NE(s.find("A[i1, i2] = (A[i1, i2] + 1)"), std::string::npos);
  EXPECT_NE(s.find("enddo"), std::string::npos);
}

TEST(LoopNestProperty, ContainsAgreesWithEnumeration) {
  Rng rng(13);
  LoopNest nest = square_nest(3);
  std::vector<Vec> iters = nest.iterations();
  for (const Vec& i : iters) EXPECT_TRUE(nest.contains(i));
  for (int k = 0; k < 100; ++k) {
    Vec p{rng.uniform(-6, 6), rng.uniform(-6, 6)};
    bool in = p[0] >= -3 && p[0] <= 3 && p[1] >= -3 && p[1] <= 3;
    EXPECT_EQ(nest.contains(p), in);
  }
}

}  // namespace
}  // namespace vdep::loopir
