// Unit and property tests for the integer linear algebra substrate:
// vectors, matrices, echelon reduction, HNF, Smith form, determinants,
// lattices and the row Diophantine solver.
#include <gtest/gtest.h>

#include "intlin/det.h"
#include "intlin/diophantine.h"
#include "intlin/echelon.h"
#include "intlin/hermite.h"
#include "intlin/lattice.h"
#include "intlin/mat.h"
#include "intlin/smith.h"
#include "intlin/vec.h"
#include "support/rng.h"

namespace vdep::intlin {
namespace {

Mat random_matrix(Rng& rng, int rows, int cols, i64 lo, i64 hi) {
  Mat m(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) m.at(r, c) = rng.uniform(lo, hi);
  return m;
}

// ---------------------------------------------------------------- vectors

TEST(Vec, AddSubScale) {
  Vec a{1, 2, 3}, b{4, -5, 6};
  EXPECT_EQ(add(a, b), (Vec{5, -3, 9}));
  EXPECT_EQ(sub(a, b), (Vec{-3, 7, -3}));
  EXPECT_EQ(scale(a, -2), (Vec{-2, -4, -6}));
  EXPECT_EQ(negate(b), (Vec{-4, 5, -6}));
}

TEST(Vec, DotProduct) {
  EXPECT_EQ(dot(Vec{1, 2, 3}, Vec{4, 5, 6}), 32);
  EXPECT_EQ(dot(Vec{}, Vec{}), 0);
}

TEST(Vec, LevelAndLeading) {
  EXPECT_EQ(level(Vec{0, 0, 7, 1}), 2);
  EXPECT_EQ(level(Vec{5}), 0);
  EXPECT_EQ(level(Vec{0, 0}), -1);
  EXPECT_EQ(level(Vec{}), -1);
}

TEST(Vec, LexPredicates) {
  EXPECT_TRUE(lex_positive(Vec{0, 3, -9}));
  EXPECT_FALSE(lex_positive(Vec{0, -3, 9}));
  EXPECT_FALSE(lex_positive(Vec{0, 0}));
  EXPECT_TRUE(lex_negative(Vec{-1, 100}));
  EXPECT_TRUE(lex_less(Vec{1, 2}, Vec{1, 3}));
  EXPECT_FALSE(lex_less(Vec{1, 3}, Vec{1, 3}));
  EXPECT_TRUE(lex_less(Vec{0, 9}, Vec{1, 0}));
}

TEST(Vec, Content) {
  EXPECT_EQ(content(Vec{6, -9, 12}), 3);
  EXPECT_EQ(content(Vec{0, 0}), 0);
  EXPECT_EQ(content(Vec{0, 5}), 5);
}

// ---------------------------------------------------------------- matrices

TEST(Mat, ConstructionAndAccess) {
  Mat m = Mat::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.at(1, 2), 6);
  EXPECT_EQ(m.row(0), (Vec{1, 2, 3}));
  EXPECT_EQ(m.col(1), (Vec{2, 5}));
  EXPECT_THROW(m.at(2, 0), PreconditionError);
}

TEST(Mat, IdentityAndZero) {
  EXPECT_EQ(Mat::identity(2), Mat::from_rows({{1, 0}, {0, 1}}));
  EXPECT_TRUE(Mat::zero(2, 3).is_zero());
}

TEST(Mat, Product) {
  Mat a = Mat::from_rows({{1, 2}, {3, 4}});
  Mat b = Mat::from_rows({{0, 1}, {1, 0}});
  EXPECT_EQ(a * b, Mat::from_rows({{2, 1}, {4, 3}}));
  EXPECT_EQ(a * Mat::identity(2), a);
}

TEST(Mat, VecMatMulRowConvention) {
  // x' = x * T with T = [[1,1],[1,0]] maps (i1,i2) -> (i1+i2, i1).
  Mat t = Mat::from_rows({{1, 1}, {1, 0}});
  EXPECT_EQ(vec_mat_mul(Vec{3, 4}, t), (Vec{7, 3}));
}

TEST(Mat, MatVecMul) {
  Mat f = Mat::from_rows({{3, -2}, {-2, 3}});
  EXPECT_EQ(mat_vec_mul(f, Vec{1, 2}), (Vec{-1, 4}));
}

TEST(Mat, SlicesAndStack) {
  Mat m = Mat::from_rows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  EXPECT_EQ(m.row_slice(1, 3), Mat::from_rows({{4, 5, 6}, {7, 8, 9}}));
  EXPECT_EQ(m.col_slice(0, 2), Mat::from_rows({{1, 2}, {4, 5}, {7, 8}}));
  EXPECT_EQ(Mat::vstack(m.row_slice(0, 1), m.row_slice(2, 3)),
            Mat::from_rows({{1, 2, 3}, {7, 8, 9}}));
}

TEST(Mat, ElementaryOps) {
  Mat m = Mat::from_rows({{1, 2}, {3, 4}});
  m.swap_rows(0, 1);
  EXPECT_EQ(m, Mat::from_rows({{3, 4}, {1, 2}}));
  m.add_row_multiple(0, 1, -3);
  EXPECT_EQ(m, Mat::from_rows({{0, -2}, {1, 2}}));
  m.swap_cols(0, 1);
  EXPECT_EQ(m, Mat::from_rows({{-2, 0}, {2, 1}}));
  m.negate_col(0);
  EXPECT_EQ(m, Mat::from_rows({{2, 0}, {-2, 1}}));
  m.add_col_multiple(1, 0, 2);
  EXPECT_EQ(m, Mat::from_rows({{2, 4}, {-2, -3}}));
}

TEST(Mat, PushRowAdoptsWidth) {
  Mat m;
  m.push_row(Vec{1, 2, 3});
  m.push_row(Vec{4, 5, 6});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_THROW(m.push_row(Vec{1}), PreconditionError);
}

// ---------------------------------------------------------------- echelon

TEST(Echelon, PaperShapeInvariants) {
  Mat m = Mat::from_rows({{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}});
  Echelon e = echelon_reduce(m);
  EXPECT_TRUE(is_echelon(e.E));
  EXPECT_TRUE(is_echelon_lex_positive(e.E));
  EXPECT_TRUE(is_unimodular(e.U));
  EXPECT_EQ(e.U * m, e.E);
}

TEST(Echelon, DetectsRank) {
  Mat m = Mat::from_rows({{1, 2}, {2, 4}, {3, 6}});
  Echelon e = echelon_reduce(m);
  EXPECT_EQ(e.rank, 1);
  EXPECT_EQ(e.levels, (std::vector<int>{0}));
}

TEST(Echelon, ZeroMatrix) {
  Echelon e = echelon_reduce(Mat::zero(3, 2));
  EXPECT_EQ(e.rank, 0);
  EXPECT_TRUE(e.E.is_zero());
  EXPECT_TRUE(is_unimodular(e.U));
}

TEST(Echelon, IsEchelonPredicate) {
  EXPECT_TRUE(is_echelon(Mat::from_rows({{1, 2, 3}, {0, 0, 4}, {0, 0, 0}})));
  EXPECT_FALSE(is_echelon(Mat::from_rows({{0, 1}, {1, 0}})));
  EXPECT_FALSE(is_echelon(Mat::from_rows({{0, 0}, {0, 1}})));  // zero row first
  EXPECT_TRUE(is_echelon(Mat::zero(2, 2)));
  EXPECT_FALSE(is_echelon_lex_positive(Mat::from_rows({{1, 2}, {0, -1}})));
}

TEST(EchelonProperty, RandomMatricesReduceCorrectly) {
  Rng rng(1234);
  for (int iter = 0; iter < 200; ++iter) {
    int rows = static_cast<int>(rng.uniform(1, 5));
    int cols = static_cast<int>(rng.uniform(1, 5));
    Mat m = random_matrix(rng, rows, cols, -9, 9);
    Echelon e = echelon_reduce(m);
    EXPECT_TRUE(is_echelon(e.E));
    EXPECT_TRUE(is_unimodular(e.U)) << m.to_string();
    EXPECT_EQ(e.U * m, e.E) << m.to_string();
    EXPECT_EQ(static_cast<int>(e.levels.size()), e.rank);
    for (std::size_t i = 1; i < e.levels.size(); ++i)
      EXPECT_LT(e.levels[i - 1], e.levels[i]);
  }
}

// ---------------------------------------------------------------- hermite

TEST(Hermite, CanonicalFormOfKnownLattice) {
  // Rows (1,-1) and (2,0): the canonical HNF reduces the above-pivot entry
  // -1 into [0,2), giving [[1,1],[0,2]] — the same lattice.
  Mat m = Mat::from_rows({{1, -1}, {2, 0}});
  Mat h = hermite_normal_form(m);
  EXPECT_EQ(h, Mat::from_rows({{1, 1}, {0, 2}}));
  Lattice l = Lattice::from_generators(m);
  EXPECT_TRUE(l.contains(Vec{1, -1}));
  EXPECT_TRUE(l.contains(Vec{2, 0}));
  EXPECT_EQ(Lattice::from_generators(h), l);
}

TEST(Hermite, PaperExample42Lattice) {
  // Generators (2,1) and (4,0): HNF = [[2,1],[0,2]], det 4 (paper 4.2).
  Mat m = Mat::from_rows({{2, 1}, {4, 0}});
  EXPECT_EQ(hermite_normal_form(m), Mat::from_rows({{2, 1}, {0, 2}}));
}

TEST(Hermite, RankOneEvenLattice) {
  // Generators (2,-2) and (4,-4): rank-1 HNF [2,-2] (paper 4.1 shape).
  Mat m = Mat::from_rows({{2, -2}, {4, -4}, {-6, 6}});
  EXPECT_EQ(hermite_normal_form(m), Mat::from_rows({{2, -2}}));
}

TEST(Hermite, TransformReconstructsInput) {
  Mat m = Mat::from_rows({{3, 1, 4}, {1, 5, 9}, {2, 6, 5}});
  HermiteResult h = hermite_with_transform(m);
  Mat expected = Mat::vstack(h.H, Mat::zero(m.rows() - h.rank, m.cols()));
  EXPECT_EQ(h.U * m, expected);
  EXPECT_TRUE(is_unimodular(h.U));
  EXPECT_TRUE(is_hermite_normal_form(h.H));
}

TEST(Hermite, IsHnfPredicate) {
  EXPECT_TRUE(is_hermite_normal_form(Mat::from_rows({{2, 1}, {0, 2}})));
  EXPECT_FALSE(is_hermite_normal_form(Mat::from_rows({{2, 3}, {0, 2}})));  // 3 >= 2
  EXPECT_FALSE(is_hermite_normal_form(Mat::from_rows({{-1, 0}, {0, 1}})));
  EXPECT_TRUE(is_hermite_normal_form(Mat::from_rows({{1, 0}, {0, 1}})));
}

TEST(HermiteProperty, IdempotentAndLatticePreserving) {
  Rng rng(777);
  for (int iter = 0; iter < 200; ++iter) {
    int rows = static_cast<int>(rng.uniform(1, 4));
    int cols = static_cast<int>(rng.uniform(1, 4));
    Mat m = random_matrix(rng, rows, cols, -6, 6);
    Mat h = hermite_normal_form(m);
    EXPECT_TRUE(is_hermite_normal_form(h) || h.rows() == 0) << m.to_string();
    EXPECT_EQ(hermite_normal_form(h), h) << m.to_string();
    // Same lattice in both directions.
    Lattice lm = Lattice::from_generators(m);
    Lattice lh = Lattice::from_generators(h);
    EXPECT_EQ(lm, lh);
    for (int r = 0; r < m.rows(); ++r) EXPECT_TRUE(lh.contains(m.row(r)));
    for (int r = 0; r < h.rows(); ++r) EXPECT_TRUE(lm.contains(h.row(r)));
  }
}

TEST(HermiteProperty, UnimodularColumnScrambleKeepsLatticeCanonical) {
  // HNF is a lattice invariant: scrambling generators by unimodular row
  // mixes must not change it.
  Rng rng(4242);
  for (int iter = 0; iter < 100; ++iter) {
    Mat m = random_matrix(rng, 3, 3, -5, 5);
    Mat scrambled = m;
    for (int k = 0; k < 6; ++k) {
      int a = static_cast<int>(rng.uniform(0, 2));
      int b = static_cast<int>(rng.uniform(0, 2));
      if (a != b) scrambled.add_row_multiple(a, b, rng.uniform(-3, 3));
    }
    EXPECT_EQ(hermite_normal_form(m), hermite_normal_form(scrambled));
  }
}

// ---------------------------------------------------------------- det

TEST(Det, SmallCases) {
  EXPECT_EQ(determinant(Mat::identity(3)), 1);
  EXPECT_EQ(determinant(Mat::from_rows({{2, 0}, {0, 3}})), 6);
  EXPECT_EQ(determinant(Mat::from_rows({{1, 2}, {2, 4}})), 0);
  EXPECT_EQ(determinant(Mat::from_rows({{0, 1}, {1, 0}})), -1);
  EXPECT_EQ(determinant(Mat::from_rows({{3, -2}, {-2, 3}})), 5);
  EXPECT_EQ(determinant(Mat(0, 0)), 1);
}

TEST(Det, ThreeByThree) {
  Mat m = Mat::from_rows({{6, 1, 1}, {4, -2, 5}, {2, 8, 7}});
  EXPECT_EQ(determinant(m), -306);
}

TEST(Det, NonSquareThrows) {
  EXPECT_THROW(determinant(Mat(2, 3)), PreconditionError);
}

TEST(DetProperty, MultiplicativeOnRandomPairs) {
  Rng rng(31337);
  for (int iter = 0; iter < 100; ++iter) {
    Mat a = random_matrix(rng, 3, 3, -4, 4);
    Mat b = random_matrix(rng, 3, 3, -4, 4);
    EXPECT_EQ(determinant(a * b),
              checked::mul(determinant(a), determinant(b)));
  }
}

TEST(Unimodular, InverseRoundTrip) {
  Mat t = Mat::from_rows({{1, 1}, {1, 0}});
  Mat inv = unimodular_inverse(t);
  EXPECT_EQ(t * inv, Mat::identity(2));
  EXPECT_EQ(inv * t, Mat::identity(2));
}

TEST(Unimodular, RejectsSingularAndNonUnimodular) {
  EXPECT_THROW(unimodular_inverse(Mat::from_rows({{2, 0}, {0, 1}})),
               PreconditionError);
  EXPECT_THROW(unimodular_inverse(Mat::from_rows({{1, 2}, {2, 4}})),
               PreconditionError);
}

TEST(UnimodularProperty, RandomUnimodularProductsInvert) {
  // Build random unimodular matrices as products of elementary ops.
  Rng rng(555);
  for (int iter = 0; iter < 100; ++iter) {
    int n = static_cast<int>(rng.uniform(2, 4));
    Mat t = Mat::identity(n);
    for (int k = 0; k < 8; ++k) {
      int a = static_cast<int>(rng.uniform(0, n - 1));
      int b = static_cast<int>(rng.uniform(0, n - 1));
      if (a == b) continue;
      if (rng.chance(1, 3))
        t.swap_cols(a, b);
      else
        t.add_col_multiple(a, b, rng.uniform(-2, 2));
    }
    ASSERT_TRUE(is_unimodular(t));
    Mat inv = unimodular_inverse(t);
    EXPECT_EQ(t * inv, Mat::identity(n));
    EXPECT_EQ(inv * t, Mat::identity(n));
  }
}

// ---------------------------------------------------------------- smith

TEST(Smith, DiagonalDivisibility) {
  Mat m = Mat::from_rows({{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}});
  Smith s = smith_normal_form(m);
  EXPECT_EQ(s.U * m * s.V, s.S);
  EXPECT_TRUE(is_unimodular(s.U));
  EXPECT_TRUE(is_unimodular(s.V));
  ASSERT_EQ(s.rank, 3);
  for (int i = 1; i < s.rank; ++i)
    EXPECT_EQ(s.divisors[static_cast<std::size_t>(i)] %
                  s.divisors[static_cast<std::size_t>(i - 1)],
              0);
  // |det| is preserved: product of divisors == |det m|.
  i64 prod = 1;
  for (i64 d : s.divisors) prod *= d;
  EXPECT_EQ(prod, checked::abs(determinant(m)));
}

TEST(SmithProperty, RandomMatrices) {
  Rng rng(9001);
  for (int iter = 0; iter < 150; ++iter) {
    int rows = static_cast<int>(rng.uniform(1, 4));
    int cols = static_cast<int>(rng.uniform(1, 4));
    Mat m = random_matrix(rng, rows, cols, -7, 7);
    Smith s = smith_normal_form(m);
    EXPECT_EQ(s.U * m * s.V, s.S) << m.to_string();
    EXPECT_TRUE(is_unimodular(s.U));
    EXPECT_TRUE(is_unimodular(s.V));
    for (int i = 0; i < s.rank; ++i) {
      EXPECT_GT(s.divisors[static_cast<std::size_t>(i)], 0);
      if (i > 0) {
        EXPECT_EQ(s.divisors[static_cast<std::size_t>(i)] %
                      s.divisors[static_cast<std::size_t>(i - 1)],
                  0);
      }
    }
    // Rank agrees with echelon reduction.
    EXPECT_EQ(s.rank, echelon_reduce(m).rank);
  }
}

// ---------------------------------------------------------------- lattice

TEST(Lattice, MembershipFullRank) {
  Lattice l = Lattice::from_generators(Mat::from_rows({{2, 1}, {0, 2}}));
  EXPECT_TRUE(l.contains(Vec{2, 1}));
  EXPECT_TRUE(l.contains(Vec{0, 2}));
  EXPECT_TRUE(l.contains(Vec{4, 0}));   // 2*(2,1) - (0,2)
  EXPECT_TRUE(l.contains(Vec{0, 0}));
  EXPECT_FALSE(l.contains(Vec{1, 0}));
  EXPECT_FALSE(l.contains(Vec{2, 0}));
  EXPECT_FALSE(l.contains(Vec{0, 1}));
  EXPECT_EQ(l.index(), 4);
}

TEST(Lattice, MembershipRankDeficient) {
  Lattice l = Lattice::from_generators(Mat::from_rows({{2, -2}}));
  EXPECT_TRUE(l.contains(Vec{2, -2}));
  EXPECT_TRUE(l.contains(Vec{-6, 6}));
  EXPECT_FALSE(l.contains(Vec{1, -1}));
  EXPECT_FALSE(l.contains(Vec{2, 2}));
  EXPECT_FALSE(l.is_full_rank());
  EXPECT_THROW(l.index(), PreconditionError);
}

TEST(Lattice, CoordinatesRoundTrip) {
  Lattice l = Lattice::from_generators(Mat::from_rows({{2, 1}, {0, 2}}));
  auto t = l.coordinates(Vec{6, 7});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(vec_mat_mul(*t, l.basis()), (Vec{6, 7}));
}

TEST(Lattice, ZeroLattice) {
  Lattice l(3);
  EXPECT_TRUE(l.is_zero());
  EXPECT_TRUE(l.contains(Vec{0, 0, 0}));
  EXPECT_FALSE(l.contains(Vec{0, 1, 0}));
}

TEST(Lattice, MergeGrowsLattice) {
  Lattice a = Lattice::from_generators(Mat::from_rows({{2, 0}}));
  Lattice b = Lattice::from_generators(Mat::from_rows({{0, 2}}));
  Lattice m = a.merged(b);
  EXPECT_EQ(m.rank(), 2);
  EXPECT_TRUE(a.subset_of(m));
  EXPECT_TRUE(b.subset_of(m));
  EXPECT_FALSE(m.subset_of(a));
  EXPECT_EQ(m.index(), 4);
}

TEST(LatticeProperty, RandomMembership) {
  Rng rng(2025);
  for (int iter = 0; iter < 100; ++iter) {
    int dim = static_cast<int>(rng.uniform(1, 4));
    int gens = static_cast<int>(rng.uniform(1, 4));
    Mat g = random_matrix(rng, gens, dim, -5, 5);
    Lattice l = Lattice::from_generators(g);
    // Random integer combinations of generators are members.
    Vec combo(static_cast<std::size_t>(dim), 0);
    for (int r = 0; r < gens; ++r)
      combo = add(combo, scale(g.row(r), rng.uniform(-3, 3)));
    EXPECT_TRUE(l.contains(combo)) << g.to_string() << " " << to_string(combo);
    auto t = l.coordinates(combo);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(vec_mat_mul(*t, l.basis()), combo);
  }
}

TEST(LatticeProperty, IndexMatchesSmithDivisors) {
  Rng rng(31415);
  for (int iter = 0; iter < 100; ++iter) {
    Mat g = random_matrix(rng, 3, 3, -4, 4);
    if (determinant(g) == 0) continue;
    Lattice l = Lattice::from_generators(g);
    Smith s = smith_normal_form(g);
    i64 prod = 1;
    for (i64 d : s.divisors) prod = checked::mul(prod, d);
    EXPECT_EQ(l.index(), prod);
    EXPECT_EQ(l.index(), checked::abs(determinant(g)));
  }
}

// ---------------------------------------------------------------- diophantine

TEST(Diophantine, PaperStyleSystem) {
  // x * M = c with M the stacked [A; -B] of a dependence equation.
  Mat m = Mat::from_rows({{1, 3}, {1, 1}, {-2, -1}, {-1, -1}});
  Vec c{-1, 2};
  RowSolution s = solve_row_system(m, c);
  ASSERT_TRUE(s.solvable);
  EXPECT_EQ(vec_mat_mul(s.particular, m), c);
  EXPECT_EQ(s.homogeneous.rows(), 2);  // 4 unknowns - rank 2
  for (int r = 0; r < s.homogeneous.rows(); ++r) {
    Vec x = add(s.particular, s.homogeneous.row(r));
    EXPECT_EQ(vec_mat_mul(x, m), c);
  }
}

TEST(Diophantine, DetectsUnsolvable) {
  // 2*x = 1 has no integer solution.
  Mat m = Mat::from_rows({{2}});
  RowSolution s = solve_row_system(m, Vec{1});
  EXPECT_FALSE(s.solvable);
}

TEST(Diophantine, DetectsInconsistent) {
  // x*(1,1) = (0,1) is inconsistent (both components equal x).
  Mat m = Mat::from_rows({{1, 1}});
  RowSolution s = solve_row_system(m, Vec{0, 1});
  EXPECT_FALSE(s.solvable);
}

TEST(Diophantine, GcdConditionExactness) {
  // x*6 + y*10 = c solvable iff gcd(6,10)=2 divides c.
  Mat m = Mat::from_rows({{6}, {10}});
  EXPECT_TRUE(solve_row_system(m, Vec{8}).solvable);
  EXPECT_TRUE(solve_row_system(m, Vec{-4}).solvable);
  EXPECT_FALSE(solve_row_system(m, Vec{7}).solvable);
}

TEST(DiophantineProperty, SolutionsSatisfySystem) {
  Rng rng(8675309);
  int solvable_count = 0;
  for (int iter = 0; iter < 300; ++iter) {
    int rows = static_cast<int>(rng.uniform(1, 5));
    int cols = static_cast<int>(rng.uniform(1, 3));
    Mat m = random_matrix(rng, rows, cols, -5, 5);
    // Bias toward solvable systems: make c a combination of rows half the time.
    Vec c(static_cast<std::size_t>(cols));
    if (rng.chance(1, 2)) {
      Vec x(static_cast<std::size_t>(rows));
      for (auto& v : x) v = rng.uniform(-4, 4);
      c = vec_mat_mul(x, m);
    } else {
      for (auto& v : c) v = rng.uniform(-10, 10);
    }
    RowSolution s = solve_row_system(m, c);
    if (!s.solvable) {
      // Brute-force check on a small box: no solution should exist.
      if (rows <= 3) {
        for (i64 x0 = -6; x0 <= 6; ++x0) {
          for (i64 x1 = -6; x1 <= 6; ++x1) {
            for (i64 x2 = -6; x2 <= 6; ++x2) {
              Vec x{x0};
              if (rows >= 2) x.push_back(x1);
              if (rows >= 3) x.push_back(x2);
              EXPECT_NE(vec_mat_mul(x, m), c)
                  << "solver missed a solution of " << m.to_string();
              if (rows < 3) break;
            }
            if (rows < 2) break;
          }
        }
      }
      continue;
    }
    ++solvable_count;
    EXPECT_EQ(vec_mat_mul(s.particular, m), c);
    for (int r = 0; r < s.homogeneous.rows(); ++r) {
      Vec h = s.homogeneous.row(r);
      EXPECT_TRUE(is_zero(vec_mat_mul(h, m)))
          << "homogeneous row is not a kernel element";
    }
  }
  EXPECT_GT(solvable_count, 100);  // the bias should make many solvable
}

}  // namespace
}  // namespace vdep::intlin
